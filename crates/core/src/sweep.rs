//! Parallel parameter sweeps.
//!
//! Every experiment table is a sweep over β (and sometimes n or the topology)
//! of the measured mixing/relaxation time alongside the paper's bound. The
//! sweeps parallelise over the parameter grid with rayon — each grid point is an
//! independent exact computation — which is where the multi-core speedup of the
//! harness comes from.

use crate::estimate::{exact_mixing_time, exact_mixing_time_with_rule, MixingMeasurement};
use crate::observables::ProfileObservable;
use crate::rules::{Logit, UpdateRule};
use crate::simulate::{EmpiricalLaw, Simulator};
use crate::DynamicsEngine;
use logit_games::{Game, PotentialGame};
use rayon::prelude::*;

/// One row of a β-sweep table.
#[derive(Debug, Clone)]
pub struct BetaSweepRow {
    /// Inverse noise β.
    pub beta: f64,
    /// Full measurement at this β.
    pub measurement: MixingMeasurement,
    /// The game's maximum global potential variation ΔΦ (constant across the sweep,
    /// repeated per row for convenience when printing).
    pub delta_phi: f64,
}

/// Runs an exact mixing-time measurement for every β in `betas`, in parallel.
///
/// `max_time` caps each exact mixing-time search; rows whose chain did not mix
/// within the cap carry `measurement.mixing_time == None` but still report the
/// spectral quantities.
pub fn beta_sweep<G>(game: &G, betas: &[f64], epsilon: f64, max_time: u64) -> Vec<BetaSweepRow>
where
    G: PotentialGame + Sync,
{
    let delta_phi = game.max_global_variation();
    betas
        .par_iter()
        .map(|&beta| BetaSweepRow {
            beta,
            measurement: exact_mixing_time(game, beta, epsilon, max_time),
            delta_phi,
        })
        .collect()
}

/// [`beta_sweep`] under an arbitrary [`UpdateRule`]: exact per-β mixing
/// measurements of the rule's uniform-selection chain (stationary law by
/// linear solve, so non-reversible rules work too), in parallel over the β
/// grid.
pub fn beta_sweep_with_rule<G, U>(
    game: &G,
    rule: &U,
    betas: &[f64],
    epsilon: f64,
    max_time: u64,
) -> Vec<BetaSweepRow>
where
    G: PotentialGame + Sync,
    U: UpdateRule,
{
    let delta_phi = game.max_global_variation();
    betas
        .par_iter()
        .map(|&beta| BetaSweepRow {
            beta,
            measurement: exact_mixing_time_with_rule(game, rule.clone(), beta, epsilon, max_time),
            delta_phi,
        })
        .collect()
}

/// A named extra CSV column: header plus a function of the sweep row.
pub type ExtraColumn<'a> = (&'a str, Box<dyn Fn(&BetaSweepRow) -> f64>);

/// Formats sweep rows as a CSV table (header + one line per row), with `extra`
/// supplying additional named columns computed from each row (e.g. the paper's
/// bound at that β).
pub fn format_csv(rows: &[BetaSweepRow], extra: &[ExtraColumn<'_>]) -> String {
    let mut out = String::new();
    out.push_str("beta,num_states,mixing_time,relaxation_time,spectral_gap,delta_phi");
    for (name, _) in extra {
        out.push(',');
        out.push_str(name);
    }
    out.push('\n');
    for row in rows {
        let mt = row
            .measurement
            .mixing_time
            .map(|t| t.to_string())
            .unwrap_or_else(|| "NA".to_string());
        out.push_str(&format!(
            "{},{},{},{:.6},{:.6},{:.6}",
            row.beta,
            row.measurement.num_states,
            mt,
            row.measurement.relaxation_time,
            row.measurement.spectral_gap,
            row.delta_phi
        ));
        for (_, f) in extra {
            out.push_str(&format!(",{:.6}", f(row)));
        }
        out.push('\n');
    }
    out
}

/// Evenly spaced β grid `[start, start + step, …]` with `count` points.
pub fn beta_grid(start: f64, step: f64, count: usize) -> Vec<f64> {
    (0..count).map(|i| start + step * i as f64).collect()
}

/// One row of a simulation-based β-sweep over the in-place profile engine.
#[derive(Debug, Clone)]
pub struct ProfileSweepRow {
    /// Inverse noise β.
    pub beta: f64,
    /// Mean of the observable across replicas at the final step.
    pub mean: f64,
    /// Standard error of that mean.
    pub std_err: f64,
    /// The full final-time empirical law of the observable.
    pub law: EmpiricalLaw,
}

/// Sweeps β with the in-place profile engine — the large-`n` counterpart of
/// [`beta_sweep`], for games whose chains cannot be built exactly. Each grid
/// point runs a replica ensemble (replicas parallelised inside
/// [`Simulator::run_profiles`]; grid points run sequentially to avoid nested
/// thread pools) and reports the final-time law of `observable`.
#[allow(clippy::too_many_arguments)]
pub fn beta_profile_sweep<G, O>(
    game: &G,
    betas: &[f64],
    start: &[usize],
    steps: u64,
    sample_every: u64,
    replicas: usize,
    seed: u64,
    observable: &O,
) -> Vec<ProfileSweepRow>
where
    G: Game + Clone + Sync,
    O: ProfileObservable + Sync,
{
    beta_profile_sweep_with_rule(
        game,
        &Logit,
        betas,
        start,
        steps,
        sample_every,
        replicas,
        seed,
        observable,
    )
}

/// [`beta_profile_sweep`] under an arbitrary [`UpdateRule`]: the same
/// in-place replica ensembles, stepping the given rule instead of the logit
/// softmax.
#[allow(clippy::too_many_arguments)]
pub fn beta_profile_sweep_with_rule<G, U, O>(
    game: &G,
    rule: &U,
    betas: &[f64],
    start: &[usize],
    steps: u64,
    sample_every: u64,
    replicas: usize,
    seed: u64,
    observable: &O,
) -> Vec<ProfileSweepRow>
where
    G: Game + Clone + Sync,
    U: UpdateRule,
    O: ProfileObservable + Sync,
{
    let sim = Simulator::new(seed, replicas);
    betas
        .iter()
        .map(|&beta| {
            let dynamics = DynamicsEngine::with_rule(game.clone(), rule.clone(), beta);
            let result = sim.run_profiles(&dynamics, start, steps, sample_every, observable);
            let stats = result.final_stats();
            ProfileSweepRow {
                beta,
                mean: stats.mean(),
                std_err: stats.std_err(),
                law: result.law(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds;
    use logit_games::WellGame;

    #[test]
    fn beta_grid_is_even() {
        let g = beta_grid(0.5, 0.25, 4);
        assert_eq!(g, vec![0.5, 0.75, 1.0, 1.25]);
        assert!(beta_grid(1.0, 1.0, 0).is_empty());
    }

    #[test]
    fn sweep_rows_cover_all_betas_and_respect_theorem_3_4() {
        let game = WellGame::plateau(3, 1.5);
        let betas = beta_grid(0.0, 0.75, 4);
        let rows = beta_sweep(&game, &betas, 0.25, 1 << 28);
        assert_eq!(rows.len(), betas.len());
        for (row, &beta) in rows.iter().zip(&betas) {
            assert_eq!(row.beta, beta);
            let t = row.measurement.mixing_time.expect("small game mixes") as f64;
            let bound = bounds::theorem_3_4_mixing_upper(3, 2, beta, row.delta_phi, 0.25);
            assert!(
                t <= bound,
                "measured {t} exceeds the Theorem 3.4 bound {bound} at beta {beta}"
            );
        }
        // Mixing time is non-decreasing in β for this two-well game.
        let times: Vec<u64> = rows
            .iter()
            .map(|r| r.measurement.mixing_time.unwrap())
            .collect();
        assert!(times.windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    fn profile_sweep_shows_adoption_rising_with_beta() {
        use crate::observables::StrategyFraction;
        use logit_games::{CoordinationGame, GraphicalCoordinationGame};
        use logit_graphs::GraphBuilder;

        // Strategy 1 is risk dominant; higher rationality means more adoption
        // by the end of a fixed horizon.
        let game = GraphicalCoordinationGame::new(
            GraphBuilder::ring(40),
            CoordinationGame::from_deltas(1.0, 3.0),
        );
        let obs = StrategyFraction::new(1, "adopters");
        let rows = beta_profile_sweep(
            &game,
            &[0.0, 2.5],
            &vec![0usize; 40],
            4000,
            1000,
            60,
            17,
            &obs,
        );
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].beta, 0.0);
        assert!(rows[0].law.len() == 60);
        assert!(
            rows[1].mean > rows[0].mean + 0.2,
            "beta=2.5 adoption {} should clearly beat beta=0 adoption {}",
            rows[1].mean,
            rows[0].mean
        );
        // At beta = 0 updates are coin flips: the adopter fraction hovers
        // around one half.
        assert!((rows[0].mean - 0.5).abs() < 0.15);
    }

    #[test]
    fn rule_generic_exact_sweep_measures_every_rule() {
        use crate::rules::{MetropolisLogit, NoisyBestResponse};
        let game = WellGame::plateau(3, 1.5);
        let betas = [0.5, 1.0];
        let metro = beta_sweep_with_rule(&game, &MetropolisLogit, &betas, 0.25, 1 << 24);
        assert_eq!(metro.len(), 2);
        assert!(metro.iter().all(|r| r.measurement.mixing_time.is_some()));
        let nbr = beta_sweep_with_rule(&game, &NoisyBestResponse::new(0.2), &betas, 0.25, 1 << 24);
        assert!(nbr.iter().all(|r| r.measurement.mixing_time.is_some()));
    }

    #[test]
    fn rule_generic_profile_sweep_runs_metropolis() {
        use crate::observables::StrategyFraction;
        use crate::rules::MetropolisLogit;
        use logit_games::{CoordinationGame, GraphicalCoordinationGame};
        use logit_graphs::GraphBuilder;

        let game = GraphicalCoordinationGame::new(
            GraphBuilder::ring(30),
            CoordinationGame::from_deltas(1.0, 3.0),
        );
        let obs = StrategyFraction::new(1, "adopters");
        let rows = beta_profile_sweep_with_rule(
            &game,
            &MetropolisLogit,
            &[0.0, 2.5],
            &vec![0usize; 30],
            4000,
            1000,
            40,
            5,
            &obs,
        );
        assert_eq!(rows.len(), 2);
        assert!(
            rows[1].mean > rows[0].mean + 0.1,
            "rationality should raise adoption under Metropolis too: {} vs {}",
            rows[1].mean,
            rows[0].mean
        );
    }

    #[test]
    fn csv_has_header_and_extra_columns() {
        let game = WellGame::plateau(3, 1.0);
        let rows = beta_sweep(&game, &[0.5], 0.25, 1 << 20);
        let csv = format_csv(
            &rows,
            &[(
                "thm34_bound",
                Box::new(|r: &BetaSweepRow| {
                    bounds::theorem_3_4_mixing_upper(3, 2, r.beta, r.delta_phi, 0.25)
                }),
            )],
        );
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert!(header.ends_with("thm34_bound"));
        assert_eq!(lines.count(), 1);
    }
}
