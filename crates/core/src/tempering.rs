//! Replica exchange (parallel tempering) across a β-ladder.
//!
//! The paper's central obstruction is that a single logit chain at high β
//! mixes in time `e^{βΔΦ(1−o(1))}` on well-style potentials (Theorem 3.5):
//! the chain freezes in whichever well it starts in. Replica exchange is the
//! standard remedy. A [`TemperingEnsemble`] owns `K` [`DynamicsEngine`]s that
//! share one game but run at different inverse noises `β_0 < β_1 < ⋯ <
//! β_{K−1}` (build ladders with `logit_anneal::BetaLadder`), and interleaves
//!
//! * **sweep phases** — every replica advances `sweep_ticks` ticks of
//!   [`DynamicsEngine::step_scheduled`] under any [`SelectionSchedule`], each
//!   replica on its own deterministic RNG stream, with
//! * **swap phases** — adjacent replica pairs `(i, i+1)` propose to exchange
//!   their *states*, accepted with the Metropolis probability
//!   `min(1, e^{(β_i − β_{i+1})(Φ(x_i) − Φ(x_{i+1}))})` on the games'
//!   potential hook.
//!
//! The swap acceptance is exactly the Metropolis ratio for the product Gibbs
//! measure `Π_k e^{−β_k Φ(x_k)}`, so each component kernel — the tensor sweep
//! and the swap move — leaves the product measure invariant, and the cold
//! (largest-β) replica yields Gibbs samples at β_cold while borrowing the hot
//! replicas' fast barrier crossings. The exact product-chain counterparts for
//! `K = 2` (see [`TemperingEnsemble::round_chain_exact`]) are built from
//! `logit_markov::product` and pin the simulated swap kernel against
//! closed-form Markov-chain theory in the proptest harness.
//!
//! Everything stays monomorphised over `G`, `U` and the schedule: the sweep
//! phase is the same hot loop as the single-chain engine, and the swap phase
//! costs `K` potential evaluations per round — amortised to nothing for
//! `sweep_ticks ≳ n`.

use crate::dynamics::{DynamicsEngine, Scratch};
use crate::rules::UpdateRule;
use crate::runtime::{RuntimeConfig, WorkerPool};
use crate::schedules::SelectionSchedule;
use logit_games::{Game, PotentialGame};
use logit_linalg::Vector;
use logit_markov::{compose, product_distribution, swap_chain, tensor_product_chain, MarkovChain};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// Swap-rate diagnostics: per adjacent pair, how many swaps were attempted
/// and how many were accepted.
///
/// Healthy ladders show acceptance rates around 0.2–0.6 on every rung; a
/// rate near 0 means the ladder has a gap the replicas cannot cross (insert a
/// rung), a rate near 1 means adjacent rungs are redundant.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SwapStats {
    attempts: Vec<u64>,
    accepts: Vec<u64>,
}

impl SwapStats {
    /// Stats over `pairs` adjacent pairs (i.e. `K − 1` for `K` replicas).
    pub fn new(pairs: usize) -> Self {
        Self {
            attempts: vec![0; pairs],
            accepts: vec![0; pairs],
        }
    }

    /// Number of adjacent pairs tracked.
    pub fn pairs(&self) -> usize {
        self.attempts.len()
    }

    /// Swap attempts of pair `(i, i+1)`.
    pub fn attempts(&self, pair: usize) -> u64 {
        self.attempts[pair]
    }

    /// Accepted swaps of pair `(i, i+1)`.
    pub fn accepts(&self, pair: usize) -> u64 {
        self.accepts[pair]
    }

    /// Acceptance rate of pair `(i, i+1)` (0 when nothing was attempted).
    pub fn rate(&self, pair: usize) -> f64 {
        if self.attempts[pair] == 0 {
            0.0
        } else {
            self.accepts[pair] as f64 / self.attempts[pair] as f64
        }
    }

    /// Acceptance rates of every adjacent pair, hot to cold.
    pub fn rates(&self) -> Vec<f64> {
        (0..self.pairs()).map(|p| self.rate(p)).collect()
    }

    /// Folds another stats object (e.g. from a sibling ensemble) into this one.
    pub fn merge(&mut self, other: &SwapStats) {
        assert_eq!(self.pairs(), other.pairs(), "pair counts must match");
        for p in 0..self.pairs() {
            self.attempts[p] += other.attempts[p];
            self.accepts[p] += other.accepts[p];
        }
    }

    fn record(&mut self, pair: usize, accepted: bool) {
        self.attempts[pair] += 1;
        if accepted {
            self.accepts[pair] += 1;
        }
    }
}

/// The mutable side of a tempering run: one strategy profile, scratch buffer
/// and RNG stream per replica, a dedicated swap RNG, the shared schedule
/// clock and the swap diagnostics.
///
/// Replica `k`'s stream is derived exactly like `Simulator`'s replica
/// streams, and the swap RNG is a separate stream — so a `K = 1` ladder
/// consumes randomness identically to the plain single-chain engine (the
/// bit-identity regression test pins this).
#[derive(Debug, Clone)]
pub struct TemperingState {
    profiles: Vec<Vec<usize>>,
    phis: Vec<f64>,
    scratches: Vec<Scratch>,
    rngs: Vec<ChaCha8Rng>,
    swap_rng: ChaCha8Rng,
    tick: u64,
    stats: SwapStats,
}

impl TemperingState {
    /// The current profile of replica `k` (0 = hottest, `K−1` = coldest).
    pub fn profile(&self, k: usize) -> &[usize] {
        &self.profiles[k]
    }

    /// The current profile of the coldest (largest-β) replica — the one whose
    /// samples target the Gibbs measure at β_cold.
    pub fn cold_profile(&self) -> &[usize] {
        self.profiles.last().expect("at least one replica")
    }

    /// The schedule clock: total engine ticks each replica has taken.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Swap diagnostics accumulated so far.
    pub fn swap_stats(&self) -> &SwapStats {
        &self.stats
    }
}

/// A replica-exchange ensemble: `K` dynamics engines sharing one game at a
/// strictly increasing β-ladder, plus the Metropolis swap kernel between
/// adjacent rungs. See the module docs for the algorithm.
///
/// The rungs share a single `Arc<G>` — for graphical games the `O(n)`
/// adjacency data exists once, not `K` times, which keeps the multi-replica
/// working set (and therefore per-update throughput) close to the
/// single-chain engine's.
#[derive(Debug, Clone)]
pub struct TemperingEnsemble<G: Game, U: UpdateRule> {
    engines: Vec<DynamicsEngine<Arc<G>, U>>,
}

impl<G: Game, U: UpdateRule> TemperingEnsemble<G, U> {
    /// Creates the ensemble from a strictly increasing β-ladder (hot → cold).
    /// Every rung shares the game; each owns a clone of `rule`.
    ///
    /// # Panics
    /// Panics when `betas` is empty, not strictly increasing, or contains a
    /// negative/non-finite value.
    pub fn new(game: G, rule: U, betas: &[f64]) -> Self {
        assert!(
            !betas.is_empty(),
            "a tempering ladder needs at least one beta"
        );
        assert!(
            betas.iter().all(|b| b.is_finite() && *b >= 0.0),
            "every ladder beta must be finite and non-negative"
        );
        assert!(
            betas.windows(2).all(|w| w[0] < w[1]),
            "the beta ladder must be strictly increasing (hot to cold)"
        );
        let shared = Arc::new(game);
        let engines = betas
            .iter()
            .map(|&beta| DynamicsEngine::with_rule(Arc::clone(&shared), rule.clone(), beta))
            .collect();
        Self { engines }
    }
}

impl<G: Game, U: UpdateRule> TemperingEnsemble<G, U> {
    /// Number of replicas `K`.
    pub fn num_replicas(&self) -> usize {
        self.engines.len()
    }

    /// The β-ladder, hot to cold.
    pub fn betas(&self) -> Vec<f64> {
        self.engines.iter().map(|e| e.beta()).collect()
    }

    /// The engine of replica `k` (the game is shared across rungs, hence the
    /// `Arc` in the engine's game slot).
    pub fn engine(&self, k: usize) -> &DynamicsEngine<Arc<G>, U> {
        &self.engines[k]
    }

    /// Index of the coldest replica (`K − 1`).
    pub fn cold_index(&self) -> usize {
        self.engines.len() - 1
    }

    /// The coldest (largest-β) engine.
    pub fn cold_engine(&self) -> &DynamicsEngine<Arc<G>, U> {
        self.engines.last().expect("at least one replica")
    }

    /// The shared game.
    pub fn game(&self) -> &G {
        self.engines[0].game()
    }

    /// Initialises a run: every replica starts from a copy of `start`, with
    /// per-replica RNG streams and a separate swap stream derived from
    /// `seed` the same way `Simulator` derives replica streams.
    pub fn init_state(&self, start: &[usize], seed: u64) -> TemperingState {
        let game = self.game();
        assert_eq!(
            start.len(),
            game.num_players(),
            "start profile length must equal the player count"
        );
        for (i, &s) in start.iter().enumerate() {
            assert!(
                s < game.num_strategies(i),
                "start strategy {s} out of range for player {i}"
            );
        }
        let k = self.num_replicas();
        TemperingState {
            profiles: vec![start.to_vec(); k],
            phis: vec![0.0; k],
            scratches: (0..k).map(|_| Scratch::for_game(game)).collect(),
            rngs: (0..k)
                .map(|r| ChaCha8Rng::seed_from_u64(crate::simulate::replica_seed(seed, r)))
                .collect(),
            swap_rng: ChaCha8Rng::seed_from_u64(swap_stream_seed(seed)),
            tick: 0,
            stats: SwapStats::new(k.saturating_sub(1)),
        }
    }
}

/// The swap RNG is its own stream so that sweep trajectories are unaffected
/// by whether swaps run (the `K = 1` no-op contract).
fn swap_stream_seed(seed: u64) -> u64 {
    seed ^ 0x51AB_5EED_0F0F_A5A5
}

impl<G: PotentialGame, U: UpdateRule> TemperingEnsemble<G, U> {
    /// The Metropolis swap acceptance for adjacent pair `(i, i+1)` given the
    /// replicas' current potentials: `min(1, e^{(β_i − β_{i+1})(Φ_i −
    /// Φ_{i+1})})`. This is the Metropolis ratio of the product Gibbs measure
    /// under the state exchange, hence the swap kernel satisfies detailed
    /// balance w.r.t. it (pinned exactly by the proptest harness).
    pub fn swap_acceptance(&self, pair: usize, phi_lo: f64, phi_hi: f64) -> f64 {
        let beta_lo = self.engines[pair].beta();
        let beta_hi = self.engines[pair + 1].beta();
        ((beta_lo - beta_hi) * (phi_lo - phi_hi)).exp().min(1.0)
    }

    /// One tempering round: every replica advances `sweep_ticks` ticks of
    /// `step_scheduled` on its own RNG stream, then every adjacent pair
    /// `(0,1), (1,2), …` proposes one state swap in ladder order. Returns the
    /// number of accepted swaps this round.
    ///
    /// With `K = 1` the swap phase vanishes and a round is exactly
    /// `sweep_ticks` plain engine ticks — the no-op-wrapper contract.
    pub fn round<S: SelectionSchedule>(
        &self,
        schedule: &S,
        state: &mut TemperingState,
        sweep_ticks: u64,
    ) -> usize {
        let k = self.num_replicas();
        assert_eq!(
            state.profiles.len(),
            k,
            "state built for a different ladder"
        );
        for (i, engine) in self.engines.iter().enumerate() {
            for t in state.tick..state.tick + sweep_ticks {
                engine.step_scheduled(
                    schedule,
                    t,
                    &mut state.profiles[i],
                    &mut state.scratches[i],
                    &mut state.rngs[i],
                );
            }
        }
        state.tick += sweep_ticks;
        self.swap_phase(state)
    }

    /// The swap phase shared by [`round`](Self::round) and
    /// [`round_pooled`](Self::round_pooled): evaluates every replica's
    /// potential, then proposes one Metropolis swap per adjacent pair in
    /// ladder order on the dedicated swap stream. Returns accepted swaps.
    fn swap_phase(&self, state: &mut TemperingState) -> usize {
        let k = self.num_replicas();
        let mut accepted = 0;
        if k > 1 {
            for (i, phi) in state.phis.iter_mut().enumerate() {
                *phi = self.engines[i].game().potential(&state.profiles[i]);
            }
            for pair in 0..k - 1 {
                let a = self.swap_acceptance(pair, state.phis[pair], state.phis[pair + 1]);
                let accept = state.swap_rng.gen::<f64>() < a;
                state.stats.record(pair, accept);
                if accept {
                    state.profiles.swap(pair, pair + 1);
                    state.phis.swap(pair, pair + 1);
                    accepted += 1;
                }
            }
            // Publish the live acceptance picture once per swap phase (K-1
            // gauge stores, never per proposal). Guarded so the disabled
            // path pays neither the label formatting nor registry lookups.
            if logit_telemetry::enabled() {
                let registry = logit_telemetry::global();
                registry
                    .counter("tempering.swaps_attempted")
                    .add((k - 1) as u64);
                registry
                    .counter("tempering.swaps_accepted")
                    .add(accepted as u64);
                for pair in 0..k - 1 {
                    registry
                        .gauge_labelled("tempering.swap_rate", ("pair", &pair.to_string()))
                        .set(state.stats.rate(pair));
                }
            }
        }
        accepted
    }

    /// Runs rounds until the coldest replica's profile satisfies `target`, up
    /// to `max_rounds`. Returns the number of *engine ticks per replica*
    /// taken when the target was first satisfied (checked after every round,
    /// and at round 0 for a start already inside the target), or `None` if
    /// the budget ran out.
    ///
    /// This is the measurement E13 uses: total engine work is the returned
    /// tick count times `K`.
    pub fn run_until<S: SelectionSchedule>(
        &self,
        schedule: &S,
        state: &mut TemperingState,
        sweep_ticks: u64,
        max_rounds: u64,
        target: impl Fn(&[usize]) -> bool,
    ) -> Option<u64> {
        if target(state.cold_profile()) {
            return Some(state.tick());
        }
        for _ in 0..max_rounds {
            self.round(schedule, state, sweep_ticks);
            if target(state.cold_profile()) {
                return Some(state.tick());
            }
        }
        None
    }
}

/// One rung's sweep-phase work item: the engine plus exclusive borrows of
/// that rung's mutable state, so rungs can advance concurrently without
/// touching each other.
struct RungSweep<'a, G: Game, U: UpdateRule> {
    engine: &'a DynamicsEngine<Arc<G>, U>,
    profile: &'a mut Vec<usize>,
    scratch: &'a mut Scratch,
    rng: &'a mut ChaCha8Rng,
}

impl<G: PotentialGame + Send + Sync, U: UpdateRule> TemperingEnsemble<G, U> {
    /// [`round`](Self::round) with the sweep phase fanned out over the
    /// persistent [`WorkerPool`]: every rung advances `sweep_ticks` ticks
    /// concurrently (one rung per pool chunk — rungs are independent between
    /// swap scans because each owns its profile, scratch and RNG stream),
    /// then the swap phase runs sequentially on the calling thread, exactly
    /// as in `round`.
    ///
    /// Per-rung streams make this bit-identical to `round` for every worker
    /// count; with one effective worker (or `K = 1`) it *is* `round`.
    pub fn round_pooled<S: SelectionSchedule>(
        &self,
        schedule: &S,
        state: &mut TemperingState,
        sweep_ticks: u64,
        pool: &WorkerPool,
        config: &RuntimeConfig,
    ) -> usize {
        let k = self.num_replicas();
        assert_eq!(
            state.profiles.len(),
            k,
            "state built for a different ladder"
        );
        let workers = config.resolved_workers().min(pool.workers() + 1).min(k);
        if workers <= 1 {
            return self.round(schedule, state, sweep_ticks);
        }

        let mut jobs: Vec<RungSweep<'_, G, U>> = self
            .engines
            .iter()
            .zip(state.profiles.iter_mut())
            .zip(state.scratches.iter_mut())
            .zip(state.rngs.iter_mut())
            .map(|(((engine, profile), scratch), rng)| RungSweep {
                engine,
                profile,
                scratch,
                rng,
            })
            .collect();
        let tick = state.tick;
        pool.for_each_chunk(&mut jobs, 1, workers, &|_,
                                                     chunk: &mut [RungSweep<
            '_,
            G,
            U,
        >]| {
            for job in chunk.iter_mut() {
                for t in tick..tick + sweep_ticks {
                    job.engine
                        .step_scheduled(schedule, t, job.profile, job.scratch, job.rng);
                }
            }
        });
        drop(jobs);
        state.tick += sweep_ticks;
        self.swap_phase(state)
    }

    /// [`run_until`](Self::run_until) driving [`round_pooled`](Self::round_pooled)
    /// instead of the sequential `round`; identical semantics and (by rung
    /// stream independence) identical trajectories.
    #[allow(clippy::too_many_arguments)]
    pub fn run_until_pooled<S: SelectionSchedule>(
        &self,
        schedule: &S,
        state: &mut TemperingState,
        sweep_ticks: u64,
        max_rounds: u64,
        target: impl Fn(&[usize]) -> bool,
        pool: &WorkerPool,
        config: &RuntimeConfig,
    ) -> Option<u64> {
        if target(state.cold_profile()) {
            return Some(state.tick());
        }
        for _ in 0..max_rounds {
            self.round_pooled(schedule, state, sweep_ticks, pool, config);
            if target(state.cold_profile()) {
                return Some(state.tick());
            }
        }
        None
    }
}

/// Exact product-chain counterparts for two-replica ladders on games small
/// enough to enumerate: the objects the reversibility/exactness test harness
/// compares the simulated swap kernel against.
impl<G: PotentialGame, U: UpdateRule> TemperingEnsemble<G, U> {
    fn assert_two_replicas(&self) {
        assert_eq!(
            self.num_replicas(),
            2,
            "exact product-chain construction is defined for K = 2 ladders"
        );
    }

    /// The potential of every flat state, in profile-space order.
    fn potential_by_state(&self) -> Vec<f64> {
        let engine = &self.engines[0];
        let space = engine.space();
        let mut profile = vec![0usize; engine.game().num_players()];
        (0..space.size())
            .map(|x| {
                space.write_profile(x, &mut profile);
                engine.game().potential(&profile)
            })
            .collect()
    }

    /// The product Gibbs measure `π(x, y) ∝ e^{−β_0Φ(x) − β_1Φ(y)}` on the
    /// pair space (K = 2), indexed by `logit_markov::pair_index`.
    pub fn product_gibbs(&self) -> Vector {
        self.assert_two_replicas();
        product_distribution(&self.engines[0].gibbs(), &self.engines[1].gibbs())
    }

    /// The exact swap kernel on the pair space (K = 2): `(x, y) → (y, x)`
    /// with the Metropolis acceptance of [`Self::swap_acceptance`]. Reversible
    /// w.r.t. [`Self::product_gibbs`] — entrywise, which the proptests check.
    pub fn swap_chain_exact(&self) -> MarkovChain {
        self.assert_two_replicas();
        let phi = self.potential_by_state();
        swap_chain(phi.len(), |x, y| self.swap_acceptance(0, phi[x], phi[y]))
    }

    /// The exact tensor sweep kernel on the pair space (K = 2): both replicas
    /// take one uniform-selection tick of their own chain independently.
    pub fn tensor_chain_exact(&self) -> MarkovChain {
        self.assert_two_replicas();
        tensor_product_chain(
            &self.engines[0].transition_chain(),
            &self.engines[1].transition_chain(),
        )
    }

    /// The exact kernel of one full tempering round (K = 2): `sweep_ticks`
    /// tensor ticks followed by one swap proposal,
    /// `P_round = (P_0 ⊗ P_1)^{sweep\_ticks} · P_swap`. Not reversible in
    /// general (compositions rarely are) but it fixes the product Gibbs
    /// measure, because both factors do.
    pub fn round_chain_exact(&self, sweep_ticks: u64) -> MarkovChain {
        self.assert_two_replicas();
        let tensor = self.tensor_chain_exact();
        let swept = MarkovChain::new(tensor.t_step_matrix(sweep_ticks));
        compose(&swept, &self.swap_chain_exact())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{Logit, MetropolisLogit};
    use crate::schedules::{SystematicSweep, UniformSingle};
    use logit_games::{CoordinationGame, GraphicalCoordinationGame, WellGame};
    use logit_graphs::GraphBuilder;
    use logit_markov::{stationary_distribution, total_variation};

    fn well_ensemble(betas: &[f64]) -> TemperingEnsemble<WellGame, Logit> {
        TemperingEnsemble::new(WellGame::plateau(4, 2.0), Logit, betas)
    }

    #[test]
    fn ladder_accessors_report_the_rungs() {
        let ens = well_ensemble(&[0.5, 1.0, 2.0]);
        assert_eq!(ens.num_replicas(), 3);
        assert_eq!(ens.betas(), vec![0.5, 1.0, 2.0]);
        assert_eq!(ens.cold_index(), 2);
        assert_eq!(ens.cold_engine().beta(), 2.0);
        assert_eq!(ens.engine(0).beta(), 0.5);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_monotone_ladder_rejected() {
        let _ = well_ensemble(&[1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "at least one beta")]
    fn empty_ladder_rejected() {
        let _ = well_ensemble(&[]);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_beta_ladder_rejected() {
        let _ = well_ensemble(&[-2.0, -1.0]);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn nan_beta_ladder_rejected() {
        let _ = well_ensemble(&[f64::NAN]);
    }

    #[test]
    fn swap_acceptance_is_the_metropolis_ratio() {
        let ens = well_ensemble(&[0.5, 2.0]);
        // Hot replica in the well, cold on the ridge: swapping moves the
        // lower-potential state cold — always accepted.
        assert_eq!(ens.swap_acceptance(0, -2.0, 0.0), 1.0);
        // Hot replica on the ridge, cold in the well: the swap would push the
        // ridge state cold, accepted only with e^{(β_lo−β_hi)(Φ_lo−Φ_hi)} < 1.
        let expect = ((0.5 - 2.0) * (0.0 - (-2.0f64))).exp();
        assert!((ens.swap_acceptance(0, 0.0, -2.0) - expect).abs() < 1e-12);
    }

    #[test]
    fn single_rung_round_is_the_plain_engine_bit_for_bit() {
        // K = 1: a round must be a no-op wrapper around step_scheduled —
        // same trajectory, same RNG stream consumption.
        let game = WellGame::plateau(5, 1.5);
        let ens = TemperingEnsemble::new(game.clone(), MetropolisLogit, &[1.3]);
        let seed = 77;
        let mut state = ens.init_state(&[0, 1, 0, 1, 0], seed);

        let plain = DynamicsEngine::with_rule(game.clone(), MetropolisLogit, 1.3);
        let mut rng = ChaCha8Rng::seed_from_u64(crate::simulate::replica_seed(seed, 0));
        let mut scratch = Scratch::for_game(&game);
        let mut profile = vec![0usize, 1, 0, 1, 0];

        for round in 0..20u64 {
            let swaps = ens.round(&SystematicSweep, &mut state, 7);
            assert_eq!(swaps, 0, "a K = 1 ladder never swaps");
            for t in round * 7..(round + 1) * 7 {
                plain.step_scheduled(&SystematicSweep, t, &mut profile, &mut scratch, &mut rng);
            }
            assert_eq!(state.profile(0), &profile[..], "diverged in round {round}");
            assert_eq!(state.cold_profile(), &profile[..]);
        }
        assert_eq!(state.tick(), 140);
        assert_eq!(state.swap_stats().pairs(), 0);
    }

    #[test]
    fn pooled_rounds_match_sequential_rounds_bit_for_bit() {
        // Rungs own their profile/scratch/RNG, so fanning the sweep phase
        // over the pool must not change a single draw: every profile, the
        // clock, the swap counts and the swap stats stay identical.
        let config = RuntimeConfig {
            workers: 3,
            min_class_size: 0,
            ..RuntimeConfig::default()
        };
        let pool = WorkerPool::new(&config);
        let ens = well_ensemble(&[0.3, 0.9, 1.8, 2.4]);
        let mut seq = ens.init_state(&[0; 4], 11);
        let mut pooled = ens.init_state(&[0; 4], 11);
        for round in 0..30u64 {
            let a = ens.round(&UniformSingle, &mut seq, 5);
            let b = ens.round_pooled(&UniformSingle, &mut pooled, 5, &pool, &config);
            assert_eq!(a, b, "swap counts diverged in round {round}");
            for k in 0..ens.num_replicas() {
                assert_eq!(seq.profile(k), pooled.profile(k), "rung {k}, round {round}");
            }
            assert_eq!(seq.tick(), pooled.tick());
        }
        assert_eq!(seq.swap_stats(), pooled.swap_stats());
        assert!(
            pool.dispatches() > 0,
            "a multi-rung ladder must actually engage the pool"
        );
    }

    #[test]
    fn run_until_pooled_matches_run_until() {
        let config = RuntimeConfig {
            workers: 2,
            min_class_size: 0,
            ..RuntimeConfig::default()
        };
        let pool = WorkerPool::new(&config);
        let ens = well_ensemble(&[0.4, 1.1, 2.2]);
        let target = |p: &[usize]| p.iter().all(|&s| s == 1);
        let mut seq = ens.init_state(&[0; 4], 19);
        let mut pooled = ens.init_state(&[0; 4], 19);
        let hit_seq = ens.run_until(&UniformSingle, &mut seq, 6, 400, target);
        let hit_pooled =
            ens.run_until_pooled(&UniformSingle, &mut pooled, 6, 400, target, &pool, &config);
        assert_eq!(hit_seq, hit_pooled);
        assert_eq!(seq.cold_profile(), pooled.cold_profile());
        assert_eq!(seq.tick(), pooled.tick());
    }

    #[test]
    fn single_rung_pooled_round_never_dispatches() {
        // K = 1 (or one effective worker) must fall back to the literal
        // sequential round: same trajectory, zero pool engagement.
        let config = RuntimeConfig {
            workers: 4,
            min_class_size: 0,
            ..RuntimeConfig::default()
        };
        let pool = WorkerPool::new(&config);
        let game = WellGame::plateau(5, 1.5);
        let ens = TemperingEnsemble::new(game, MetropolisLogit, &[1.3]);
        let mut seq = ens.init_state(&[0, 1, 0, 1, 0], 7);
        let mut pooled = ens.init_state(&[0, 1, 0, 1, 0], 7);
        for _ in 0..10 {
            ens.round(&SystematicSweep, &mut seq, 6);
            ens.round_pooled(&SystematicSweep, &mut pooled, 6, &pool, &config);
        }
        assert_eq!(seq.profile(0), pooled.profile(0));
        assert_eq!(pool.dispatches(), 0, "K = 1 must bypass the pool entirely");
    }

    #[test]
    fn swap_stats_count_attempts_per_pair() {
        let ens = well_ensemble(&[0.2, 0.8, 1.6]);
        let mut state = ens.init_state(&[0; 4], 3);
        for _ in 0..50 {
            ens.round(&UniformSingle, &mut state, 4);
        }
        let stats = state.swap_stats();
        assert_eq!(stats.pairs(), 2);
        assert_eq!(stats.attempts(0), 50);
        assert_eq!(stats.attempts(1), 50);
        assert!(stats.accepts(0) <= 50);
        let rates = stats.rates();
        assert_eq!(rates.len(), 2);
        assert!(rates.iter().all(|r| (0.0..=1.0).contains(r)));
        // On this mild ladder swaps do happen.
        assert!(stats.accepts(0) + stats.accepts(1) > 0);
    }

    #[test]
    fn swap_stats_merge_adds_counts() {
        let mut a = SwapStats::new(2);
        a.record(0, true);
        a.record(1, false);
        let mut b = SwapStats::new(2);
        b.record(0, false);
        b.record(0, true);
        a.merge(&b);
        assert_eq!(a.attempts(0), 3);
        assert_eq!(a.accepts(0), 2);
        assert_eq!(a.attempts(1), 1);
        assert_eq!(a.rate(1), 0.0);
        assert!((a.rate(0) - 2.0 / 3.0).abs() < 1e-12);
        // A fresh pair reports rate 0, not NaN.
        assert_eq!(SwapStats::new(1).rate(0), 0.0);
    }

    #[test]
    fn exact_swap_kernel_is_reversible_wrt_the_product_gibbs() {
        let game = GraphicalCoordinationGame::new(
            GraphBuilder::path(3),
            CoordinationGame::from_deltas(2.0, 1.0),
        );
        let ens = TemperingEnsemble::new(game, Logit, &[0.4, 1.7]);
        let pi = ens.product_gibbs();
        assert!(pi.is_distribution(1e-9));
        assert!(ens.swap_chain_exact().is_reversible(&pi, 1e-9));
        assert!(ens.tensor_chain_exact().is_reversible(&pi, 1e-9));
    }

    #[test]
    fn exact_round_chain_fixes_the_product_gibbs_and_is_its_stationary_law() {
        let game = WellGame::plateau(3, 1.0);
        let ens = TemperingEnsemble::new(game, Logit, &[0.5, 1.5]);
        let pi = ens.product_gibbs();
        let round = ens.round_chain_exact(3);
        assert!(total_variation(&round.step_distribution(&pi), &pi) < 1e-10);
        assert!(round.is_ergodic());
        assert!(total_variation(&stationary_distribution(&round), &pi) < 1e-8);
    }

    #[test]
    fn cold_replica_samples_gibbs_at_the_cold_beta() {
        // Long tempered run on a small well game: the empirical distribution
        // of the cold replica approaches the Gibbs measure at β_cold.
        let game = WellGame::plateau(4, 2.0);
        let ens = TemperingEnsemble::new(game.clone(), Logit, &[0.3, 1.0, 2.5]);
        let cold = ens.cold_engine();
        let space = cold.space().clone();
        let pi_cold = cold.gibbs();

        let mut state = ens.init_state(&[0; 4], 11);
        let mut empirical = Vector::zeros(space.size());
        let burn_in = 500u64;
        let samples = 6000u64;
        for r in 0..burn_in + samples {
            ens.round(&UniformSingle, &mut state, 4);
            if r >= burn_in {
                empirical[space.index_of(state.cold_profile())] += 1.0;
            }
        }
        empirical.scale(1.0 / samples as f64);
        let tv = total_variation(&empirical, &pi_cold);
        assert!(
            tv < 0.06,
            "cold replica should sample Gibbs(β_cold), tv = {tv}"
        );
        // And the swap diagnostics show a connected ladder.
        let rates = state.swap_stats().rates();
        assert!(
            rates.iter().all(|&r| r > 0.05),
            "every rung should exchange, rates = {rates:?}"
        );
    }

    #[test]
    fn run_until_reports_the_first_hit_in_ticks() {
        let game = WellGame::plateau(4, 2.0);
        let ens = TemperingEnsemble::new(game.clone(), Logit, &[0.3, 1.0, 2.0]);
        let mut state = ens.init_state(&[0; 4], 5);
        // Already-satisfied targets report the current tick without stepping.
        assert_eq!(
            ens.run_until(&UniformSingle, &mut state, 4, 100, |_| true),
            Some(0)
        );
        // Crossing into the opposite well (weight ≥ 2) happens quickly with a
        // hot rung in the ladder.
        let hit = ens.run_until(&UniformSingle, &mut state, 4, 20_000, |p| {
            p.iter().filter(|&&s| s == 1).count() >= 2
        });
        let ticks = hit.expect("tempered ensemble crosses the ridge");
        assert!(ticks > 0);
        assert_eq!(ticks % 4, 0, "hits are detected at round boundaries");
        // A budget of zero rounds reports failure from a non-target start.
        let mut fresh = ens.init_state(&[0; 4], 5);
        assert_eq!(
            ens.run_until(&UniformSingle, &mut fresh, 4, 0, |p| p
                .iter()
                .all(|&s| s == 1)),
            None
        );
    }

    #[test]
    #[should_panic(expected = "length must equal")]
    fn wrong_start_profile_rejected() {
        let ens = well_ensemble(&[0.5, 1.0]);
        let _ = ens.init_state(&[0, 0], 1);
    }
}
