//! # logit-core
//!
//! The logit dynamics for strategic games — the primary contribution of
//! *"Convergence to Equilibrium of Logit Dynamics for Strategic Games"*
//! (Auletta, Ferraioli, Pasquale, Penna, Persiano; SPAA 2011).
//!
//! At every step a player `i` is chosen uniformly at random and refreshes her
//! strategy to `y` with probability
//!
//! `σ_i(y | x) = e^{β·u_i(y, x_{-i})} / Σ_z e^{β·u_i(z, x_{-i})}`   (eq. 2)
//!
//! where `β ≥ 0` is the inverse noise (rationality). This defines an ergodic
//! Markov chain `M_β(G)` over the profile space (eq. 3); for potential games its
//! stationary distribution is the Gibbs measure `π(x) ∝ e^{-βΦ(x)}` (eq. 4, cost
//! convention).
//!
//! The crate provides:
//!
//! * [`dynamics::DynamicsEngine`] — the generic revision-dynamics engine:
//!   pluggable update rules ([`rules`]: logit/Glauber, Metropolis, noisy best
//!   response, Fermi pairwise comparison, imitate-the-better) and selection
//!   schedules ([`schedules`]: uniform single-player, systematic sweep,
//!   parallel all-logit blocks; [`parallel`]: random `k`-blocks and
//!   graph-colouring independent-set blocks), explicit chain construction
//!   (dense, sparse, per-schedule) and single-step simulation — with
//!   [`dynamics::LogitDynamics`] kept as the paper's logit instance,
//! * [`parallel`] — the coloured parallel-revision subsystem: the
//!   [`parallel::RandomBlock`] and [`parallel::ColouredBlocks`] schedules,
//!   the genuinely parallel independent-set engine path
//!   (`step_coloured_par`, per-player RNG streams, bit-identical to the
//!   sequential class sweep) and the exact coloured block/round chains,
//! * [`locality`] — the memory-locality layer for `n = 10⁶`–`10⁷`:
//!   reverse-Cuthill–McKee player relabelling ([`locality::LocalityLayout`],
//!   a pure view — draws stay keyed by original ids, so trajectories are
//!   bit-identical after the inverse permutation), byte (SoA) strategy
//!   profiles over CSR adjacency, and cache-blocked pooled class sweeps
//!   sized by [`runtime::RuntimeConfig`]`::block_players`,
//! * [`gibbs`] — numerically stable Gibbs measures and partition functions,
//! * [`simulate`] — trajectory simulation, parallel replica ensembles and
//!   empirical-distribution estimation (rayon-based),
//! * [`pipeline`] — the PPL-style pipelined ensemble runner: a farm of step
//!   workers feeding streamed observable reducers through bounded channels
//!   ([`simulate::Simulator::run_profiles_pipelined`]), bit-identical to the
//!   sequential path under fixed seeds,
//! * [`runtime`] — the persistent parallel runtime: a spawn-once
//!   [`runtime::WorkerPool`] with a thread registry (worker ids, optional
//!   Linux core pinning), spin/yield/park wait policies, epoch-tagged
//!   chunk-stealing dispatch and per-tick barriers, plus the unified
//!   [`runtime::RuntimeConfig`] worker-count knob shared by the coloured,
//!   pipelined and tempered paths,
//! * [`estimate`] — mixing-time measurement: exact (via `logit-markov`), spectral
//!   bounds, and coupling-based upper estimates using the paper's couplings,
//! * [`coupling`] — the maximal per-coordinate coupling of Theorem 3.6 / 4.2 and
//!   the shared-uniform monotone coupling of Theorem 5.6,
//! * [`barrier`] — the potential-barrier quantity `ζ` of Section 3.4 (union-find
//!   saddle computation plus a brute-force cross-check),
//! * [`bounds`] — one function per theorem, returning the paper's closed-form
//!   upper/lower bounds so experiments can print "measured vs. bound" tables,
//! * [`sweep`] — parallel parameter sweeps (over β, n, topologies) producing the
//!   rows of every experiment table in `EXPERIMENTS.md`,
//! * [`tempering`] — replica exchange (parallel tempering) across a β-ladder:
//!   `K` engines sharing one game, Metropolis-accepted adjacent state swaps on
//!   the potential difference, swap-rate diagnostics, and the exact
//!   product-chain constructions the test harness validates the swap kernel
//!   against.

pub mod barrier;
pub mod bounds;
pub mod coupling;
pub mod dynamics;
pub mod estimate;
pub mod gibbs;
pub mod locality;
pub mod observables;
pub mod parallel;
pub mod pipeline;
pub mod rules;
pub mod runtime;
pub mod schedules;
pub mod simulate;
pub mod sweep;
pub mod tempering;

pub use barrier::{zeta, zeta_brute_force, BarrierResult};
pub use coupling::{coupling_time_estimate, CouplingKind};
pub use dynamics::{DynamicsEngine, LogitDynamics, Scratch, StepEvent};
pub use estimate::{
    exact_mixing_time, exact_mixing_time_with_rule, spectral_mixing_bounds, MixingMeasurement,
};
pub use gibbs::{gibbs_distribution, log_partition_function};
pub use locality::LocalityLayout;
pub use observables::{
    ensemble_time_series, HammingToProfile, NamedObservable, Observable, PotentialObservable,
    ProfileObservable, SeriesAccumulator, StrategyFraction, TimeSeries,
};
pub use parallel::{
    coloring_for_game, coloring_for_graph, player_tick_seed, ColouredBlocks, RandomBlock,
};
pub use pipeline::{
    CancelToken, ChannelBackendKind, OrderedSeriesReducer, PipelineConfig, PipelineConfigError,
    ReducerMode, SnapshotBatch,
};
pub use rules::{Fermi, ImitateBetter, Logit, MetropolisLogit, NoisyBestResponse, UpdateRule};
pub use runtime::{RuntimeConfig, ThreadRegistry, WaitPolicy, WorkerEntry, WorkerPool};
pub use schedules::{AllLogit, SelectionSchedule, SystematicSweep, UniformSingle};
pub use simulate::{
    simulate_profile_trajectory, simulate_trajectory, EmpiricalLaw, EmptyLawError, EnsembleResult,
    ProfileEnsembleResult, Simulator, TemperedEnsembleResult,
};
pub use sweep::{
    beta_profile_sweep, beta_profile_sweep_with_rule, beta_sweep, beta_sweep_with_rule,
    BetaSweepRow, ProfileSweepRow,
};
pub use tempering::{SwapStats, TemperingEnsemble, TemperingState};
