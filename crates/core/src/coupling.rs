//! Couplings of the logit dynamics.
//!
//! Two couplings from the paper are implemented, both selecting the *same*
//! player in both chains at every step:
//!
//! * [`maximal_coupling_step`] — the interval-partition coupling from the proofs
//!   of Theorem 3.6 and Theorem 4.2: with probability
//!   `ℓ = Σ_z min(σ_i(z|x), σ_i(z|y))` both chains move to the same strategy
//!   (sampled from the overlap), otherwise each samples from its residual.
//!   This maximises the per-step coalescence probability of the selected
//!   coordinate.
//! * [`shared_uniform_coupling_step`] — both chains update through the inverse
//!   CDF of their own update distribution evaluated at the *same* uniform `U`
//!   (strategies scanned in increasing order). On the ring coordination games of
//!   Theorem 5.6 this is the monotone coupling used in the proof.
//!
//! [`coupling_time_estimate`] plugs either step into the generic
//! `logit-markov::coupling` machinery to estimate mixing times by simulation for
//! games whose state space is too large for the exact computation.

use crate::dynamics::DynamicsEngine;
use crate::rules::UpdateRule;
use logit_games::Game;
use logit_markov::{coupling_mixing_upper_bound, simulate_coupling, CouplingEstimate};
use rand::Rng;

/// One step of the maximal per-coordinate coupling. Takes and returns flat
/// profile indices.
pub fn maximal_coupling_step<G: Game, U: UpdateRule, R: Rng + ?Sized>(
    dynamics: &DynamicsEngine<G, U>,
    rng: &mut R,
    x: usize,
    y: usize,
) -> (usize, usize) {
    let space = dynamics.space();
    let n = dynamics.game().num_players();
    let player = rng.gen_range(0..n);
    let px = dynamics.update_distribution(player, &space.profile_of(x));
    let py = dynamics.update_distribution(player, &space.profile_of(y));
    let m = px.len();

    let overlap: Vec<f64> = (0..m).map(|s| px[s].min(py[s])).collect();
    let ell: f64 = overlap.iter().sum();
    let u: f64 = rng.gen();

    let (sx, sy) = if u < ell {
        // Both chains move to the same strategy sampled from the overlap.
        let target = u;
        let mut acc = 0.0;
        let mut chosen = m - 1;
        for (s, &w) in overlap.iter().enumerate() {
            acc += w;
            if target < acc {
                chosen = s;
                break;
            }
        }
        (chosen, chosen)
    } else {
        // Each chain samples from its residual distribution, driven by the same
        // uniform (the residuals have disjoint "extra" mass so this still gives
        // the correct marginals).
        let v = u - ell;
        let pick = |p: &[f64]| -> usize {
            let mut acc = 0.0;
            for s in 0..m {
                let residual = p[s] - overlap[s];
                acc += residual;
                if v < acc {
                    return s;
                }
            }
            m - 1
        };
        (pick(&px), pick(&py))
    };
    (
        space.with_strategy(x, player, sx),
        space.with_strategy(y, player, sy),
    )
}

/// One step of the shared-uniform (inverse CDF) coupling.
pub fn shared_uniform_coupling_step<G: Game, U: UpdateRule, R: Rng + ?Sized>(
    dynamics: &DynamicsEngine<G, U>,
    rng: &mut R,
    x: usize,
    y: usize,
) -> (usize, usize) {
    let space = dynamics.space();
    let n = dynamics.game().num_players();
    let player = rng.gen_range(0..n);
    let u: f64 = rng.gen();
    let pick = |profile_idx: usize| -> usize {
        let probs = dynamics.update_distribution(player, &space.profile_of(profile_idx));
        let mut acc = 0.0;
        for (s, &p) in probs.iter().enumerate() {
            acc += p;
            if u < acc {
                return s;
            }
        }
        probs.len() - 1
    };
    (
        space.with_strategy(x, player, pick(x)),
        space.with_strategy(y, player, pick(y)),
    )
}

/// Which coupling to use for a simulation-based estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CouplingKind {
    /// The interval-partition coupling of Theorems 3.6 / 4.2.
    Maximal,
    /// The shared-uniform monotone coupling of Theorem 5.6.
    SharedUniform,
}

/// Estimates the coupling-time distribution of the logit dynamics from the
/// starting pair `(x0, y0)` and converts it into a mixing-time upper estimate
/// (Theorem 2.1: `d(t) ≤ P(τ_couple > t)`), targeting the quantile
/// `1 − ε` so the returned `quantile_time` estimates `t_mix(ε)`.
#[allow(clippy::too_many_arguments)]
pub fn coupling_time_estimate<G: Game, U: UpdateRule, R: Rng + ?Sized>(
    dynamics: &DynamicsEngine<G, U>,
    rng: &mut R,
    x0: usize,
    y0: usize,
    kind: CouplingKind,
    trials: usize,
    max_steps: u64,
    epsilon: f64,
) -> CouplingEstimate {
    let times = simulate_coupling(rng, x0, y0, trials, max_steps, |rng, &x, &y| match kind {
        CouplingKind::Maximal => maximal_coupling_step(dynamics, rng, x, y),
        CouplingKind::SharedUniform => shared_uniform_coupling_step(dynamics, rng, x, y),
    });
    coupling_mixing_upper_bound(&times, max_steps, 1.0 - epsilon)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::LogitDynamics;
    use logit_games::{CoordinationGame, GraphicalCoordinationGame, WellGame};
    use logit_graphs::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ring_dynamics(n: usize, delta: f64, beta: f64) -> LogitDynamics<GraphicalCoordinationGame> {
        LogitDynamics::new(
            GraphicalCoordinationGame::new(
                GraphBuilder::ring(n),
                CoordinationGame::symmetric(delta),
            ),
            beta,
        )
    }

    /// Empirically verify that a coupling step has the correct marginals: the
    /// X-marginal of the coupled step must match independent simulation of the
    /// dynamics.
    fn check_marginals(kind: CouplingKind) {
        let d = ring_dynamics(3, 1.0, 1.2);
        let space = d.space();
        let x0 = space.index_of(&[0, 0, 1]);
        let y0 = space.index_of(&[1, 1, 0]);
        let mut rng = StdRng::seed_from_u64(42);
        let samples = 40_000;
        let mut coupled_counts = vec![0usize; d.num_states()];
        let mut solo_counts = vec![0usize; d.num_states()];
        for _ in 0..samples {
            let (nx, _ny) = match kind {
                CouplingKind::Maximal => maximal_coupling_step(&d, &mut rng, x0, y0),
                CouplingKind::SharedUniform => shared_uniform_coupling_step(&d, &mut rng, x0, y0),
            };
            coupled_counts[nx] += 1;
            solo_counts[d.step(x0, &mut rng)] += 1;
        }
        for s in 0..d.num_states() {
            let a = coupled_counts[s] as f64 / samples as f64;
            let b = solo_counts[s] as f64 / samples as f64;
            assert!(
                (a - b).abs() < 0.02,
                "marginal mismatch at state {s}: coupled {a} vs independent {b}"
            );
        }
    }

    #[test]
    fn maximal_coupling_has_correct_marginals() {
        check_marginals(CouplingKind::Maximal);
    }

    #[test]
    fn shared_uniform_coupling_has_correct_marginals() {
        check_marginals(CouplingKind::SharedUniform);
    }

    #[test]
    fn coupled_chains_stay_together_once_met() {
        let d = ring_dynamics(4, 1.0, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut x = 0usize;
        let mut y = 0usize;
        for _ in 0..200 {
            let (nx, ny) = maximal_coupling_step(&d, &mut rng, x, y);
            assert_eq!(nx, ny, "chains starting together must remain together");
            x = nx;
            y = ny;
        }
    }

    #[test]
    fn coupling_estimate_is_reasonable_for_small_beta() {
        // At small beta the chain mixes in O(n log n); the coupling estimate
        // should be small and uncensored.
        let d = ring_dynamics(5, 1.0, 0.02);
        let mut rng = StdRng::seed_from_u64(3);
        let space = d.space();
        let all0 = space.index_of(&[0; 5]);
        let all1 = space.index_of(&[1; 5]);
        let est = coupling_time_estimate(
            &d,
            &mut rng,
            all0,
            all1,
            CouplingKind::Maximal,
            200,
            200_000,
            0.25,
        );
        assert_eq!(est.censored, 0);
        assert!(est.quantile_time < 2_000);
    }

    #[test]
    fn coupling_time_grows_with_beta_on_the_well_game() {
        let game = WellGame::plateau(5, 2.0);
        let mut rng = StdRng::seed_from_u64(9);
        let mut estimates = Vec::new();
        for beta in [0.1, 1.0, 2.5] {
            let d = LogitDynamics::new(game.clone(), beta);
            let space = d.space();
            let a = space.index_of(&[0; 5]);
            let b = space.index_of(&[1; 5]);
            let est = coupling_time_estimate(
                &d,
                &mut rng,
                a,
                b,
                CouplingKind::Maximal,
                100,
                2_000_000,
                0.25,
            );
            estimates.push(est.mean_coupling_time);
        }
        assert!(
            estimates[2] > estimates[0],
            "coupling should get slower as beta grows: {estimates:?}"
        );
    }
}
