//! Coloured parallel revision: block selection schedules and the truly
//! parallel independent-set engine path.
//!
//! The paper's chain revises one uniformly random player per step; its
//! companion line of work revises *everyone* per step (all-logit). This
//! module fills in the space between, along two axes:
//!
//! * [`RandomBlock`]`(k)` — a random `k`-subset of players revises as a
//!   parallel block each tick, interpolating
//!   [`UniformSingle`](crate::schedules::UniformSingle) (`k = 1`) →
//!   [`AllLogit`](crate::schedules::AllLogit) (`k = n`);
//! * [`ColouredBlocks`] — one colour class of a proper colouring of the
//!   interaction graph revises per tick, classes cycling round-robin. For a
//!   [`LocalGame`] a colour class is an **independent set**, so the block
//!   update is not merely a modelling choice but the *correct
//!   parallelisation*: non-neighbours' updates commute, and a parallel
//!   frozen-profile block equals any sequential ordering of the same
//!   updates.
//!
//! Both are ordinary [`SelectionSchedule`]s, so they plug into everything
//! downstream unchanged — `step_scheduled`, `run_profiles_scheduled`, the
//! pipelined farm, `run_tempered`, sweeps, annealing.
//!
//! On top of the schedule seam sits the genuinely parallel engine path,
//! [`DynamicsEngine::step_coloured_par`]: a whole colour class is updated by
//! rayon-scoped workers, every player drawing from her **own deterministic
//! RNG stream** (derived from `(seed, player, tick)`), each worker reading
//! the frozen pre-tick profile through the read-only
//! [`LocalGame::utilities_for_frozen`] hook. Because the class is an
//! independent set, the result is bit-identical to the sequential class
//! sweep [`DynamicsEngine::step_coloured`] *by construction* — the
//! commutation argument, pinned by a proptest across rules × topologies —
//! whatever the worker count or chunking.
//!
//! The exact-chain counterparts,
//! [`DynamicsEngine::transition_matrix_coloured_block`] and
//! [`DynamicsEngine::transition_chain_coloured_round`], make the schedule
//! theory-checkable in the style of
//! [`transition_chain_all_logit`](crate::dynamics::DynamicsEngine::transition_chain_all_logit):
//! one round (every class once) is the ordered product of commuting player
//! kernels, so for the Gibbs-reversible rules the round chain keeps the
//! Gibbs measure stationary — unlike the all-logit block chain, whose
//! stationary law is a genuinely different object.

use crate::dynamics::{sample_index_from_uniform, DynamicsEngine, Scratch};
use crate::rules::UpdateRule;
use crate::runtime::{RuntimeConfig, WorkerPool};
use crate::schedules::SelectionSchedule;
use logit_games::{interaction_graph, LocalGame};
use logit_graphs::{dsatur_coloring, greedy_coloring, Coloring};
use logit_linalg::Matrix;
use logit_markov::MarkovChain;
use rand::Rng;

/// A parallel block schedule revising a uniformly random `k`-subset of the
/// players each tick (all sampling against the frozen pre-tick profile).
///
/// `k = 1` is distributed like the paper's
/// [`UniformSingle`](crate::schedules::UniformSingle) chain; `k = n` selects
/// everyone and coincides with
/// [`AllLogit`](crate::schedules::AllLogit)'s update set — the schedule
/// interpolates between the two. Selection consumes exactly `k`
/// `gen_range` draws (Floyd's subset-sampling algorithm) and the selected
/// players are emitted in ascending order, so block composition is
/// deterministic given the draws.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomBlock {
    k: usize,
}

impl RandomBlock {
    /// Creates the schedule with block size `k ≥ 1`.
    ///
    /// # Panics
    /// Panics when `k = 0`. (That `k` does not exceed the player count is
    /// asserted at selection time, where the player count is known.)
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "a random block revises at least one player");
        Self { k }
    }

    /// The block size `k`.
    pub fn block_size(&self) -> usize {
        self.k
    }
}

impl SelectionSchedule for RandomBlock {
    fn select_players<R: Rng + ?Sized>(
        &self,
        _t: u64,
        num_players: usize,
        rng: &mut R,
        out: &mut Vec<usize>,
    ) {
        assert!(
            self.k <= num_players,
            "block size {} exceeds the player count {num_players}",
            self.k
        );
        // Floyd's algorithm, kept sorted in the caller's reused buffer:
        // k draws, k distinct players, no O(n) buffer, no allocation on the
        // hot stepping path. When the drawn `r` is already present, `j`
        // replaces it — and `j` strictly exceeds every earlier entry
        // (previous iterations only held values < j), so it appends.
        out.clear();
        for j in (num_players - self.k)..num_players {
            let r = rng.gen_range(0..j + 1);
            match out.binary_search(&r) {
                Err(pos) => out.insert(pos, r),
                Ok(_) => out.push(j),
            }
        }
    }

    fn parallel(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "random_block"
    }
}

/// The graph-colouring schedule: tick `t` revises colour class
/// `t mod num_classes` of a proper colouring of the interaction graph, as a
/// parallel block; a *round* of `num_classes` consecutive ticks revises
/// every player exactly once.
///
/// For a [`LocalGame`] each class is an independent set, so the parallel
/// block update is exactly equivalent to revising the class sequentially —
/// the correct parallelisation of the dynamics, and the schedule the
/// genuinely parallel [`DynamicsEngine::step_coloured_par`] path executes.
/// Selection consumes no randomness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColouredBlocks {
    coloring: Coloring,
}

impl ColouredBlocks {
    /// Creates the schedule from a colouring (use
    /// [`Coloring::is_proper`] against the interaction graph when the
    /// colouring does not come from one of the constructions here).
    pub fn new(coloring: Coloring) -> Self {
        Self { coloring }
    }

    /// Colours `game`'s interaction graph via [`coloring_for_game`]
    /// (scale-aware DSATUR/greedy choice) and wraps it.
    pub fn for_game<G: LocalGame>(game: &G) -> Self {
        Self::new(coloring_for_game(game))
    }

    /// The underlying colouring.
    pub fn coloring(&self) -> &Coloring {
        &self.coloring
    }
}

impl SelectionSchedule for ColouredBlocks {
    fn select_players<R: Rng + ?Sized>(
        &self,
        t: u64,
        num_players: usize,
        _rng: &mut R,
        out: &mut Vec<usize>,
    ) {
        assert_eq!(
            num_players,
            self.coloring.num_vertices(),
            "colouring covers a different player count"
        );
        out.clear();
        out.extend_from_slice(self.coloring.class(self.coloring.class_of_tick(t)));
    }

    fn parallel(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "coloured_blocks"
    }
}

/// A proper colouring of `game`'s interaction graph — the
/// `GraphBuilder`-topology-to-schedule bridge in one call: any
/// [`LocalGame`] (graphical coordination or Ising on a builder topology, a
/// congestion game with its implicit resource-sharing graph, …) comes back
/// as a [`Coloring`] ready for [`ColouredBlocks`] and the parallel engine
/// path.
///
/// Algorithm choice is scale-aware: DSATUR (usually the fewest classes,
/// exact on bipartite graphs) costs `O(n·(Δ+1))` memory for its exact
/// saturation bookkeeping plus a quadratic-ish selection scan, so beyond a
/// size threshold this falls back to first-fit greedy — `O(n + m)` time,
/// `O(Δ)` extra memory, the same `χ ≤ Δ + 1` guarantee (on the dense
/// circulant bench instance the two produce the *same* class count). Both
/// are deterministic, so the choice depends only on the graph, never the
/// host.
pub fn coloring_for_game<G: LocalGame>(game: &G) -> Coloring {
    coloring_for_graph(&interaction_graph(game))
}

/// The scale-aware colouring choice of [`coloring_for_game`] on an already
/// materialised graph — the entry point when the caller holds the
/// interaction graph anyway (the locality layout does, to avoid bridging
/// a `10⁷`-vertex game twice).
pub fn coloring_for_graph(graph: &logit_graphs::Graph) -> Coloring {
    // Two caps gate DSATUR. The cell bound (~4M bookkeeping entries) keeps
    // its saturation table in cache-adjacent memory; the vertex bound caps
    // its O(n²) selection scan — a low-degree graph like a 10⁶-vertex ring
    // passes the cell bound but would spend hours in the scan. 2¹⁴ vertices
    // (≤ ~270M comparisons, tens of milliseconds) covers every
    // exact-analysis instance with a wide margin.
    let n = graph.num_vertices();
    let dsatur_cells = n.saturating_mul(graph.max_degree() + 1);
    if dsatur_cells <= 1 << 22 && n <= 1 << 14 {
        dsatur_coloring(graph)
    } else {
        greedy_coloring(graph)
    }
}

/// SplitMix64 finaliser: decorrelates the per-player stream seeds.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The deterministic seed of player `player`'s revision randomness at tick
/// `t` — a counter-mode hash, not a position in a shared stream.
///
/// Per-player streams are what make the parallel independent-set update
/// order-free: each player's strategy draw depends only on
/// `(seed, player, t)`, never on which worker ran her or in what order — so
/// the parallel path and the sequential class sweep consume identical
/// randomness per player and walk identical trajectories.
pub fn player_tick_seed(seed: u64, player: usize, t: u64) -> u64 {
    // Chained finaliser applications: splitmix64 is a bijection, so for a
    // fixed tick distinct players always get distinct seeds.
    let h = splitmix64(seed ^ 0xC010_12ED_5EED_0001);
    let h = splitmix64(h.wrapping_add(t));
    splitmix64(h.wrapping_add(player as u64))
}

/// The single uniform variate behind player `player`'s strategy draw at
/// tick `t`: the top 53 bits of [`player_tick_seed`] mapped into `[0, 1)`.
///
/// One inverse-CDF draw is all a revision consumes (the update rule packs
/// every other source of randomness into the probability vector), so a
/// counter-derived variate — a few integer mixes, no generator state — is a
/// complete per-player stream. Both coloured step paths sample from this,
/// which keeps the per-update cost at sequential-stepping parity on one
/// core while making the update order unobservable on many.
pub fn player_tick_uniform(seed: u64, player: usize, t: u64) -> f64 {
    (player_tick_seed(seed, player, t) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl<G: LocalGame, U: UpdateRule> DynamicsEngine<G, U> {
    /// One coloured tick, sequential reference path: the players of colour
    /// class `t mod num_classes` revise one at a time **in place** (each
    /// seeing the previous updates of the same tick), every player drawing
    /// from her own `(seed, player, t)` stream. Returns the number of
    /// players that moved.
    ///
    /// Because the class is an independent set of a [`LocalGame`]'s
    /// interaction graph, no player in it can observe another's same-tick
    /// update — which is exactly why [`Self::step_coloured_par`] (frozen
    /// profile, any worker count) is bit-identical to this sweep.
    ///
    /// # Panics
    /// Panics when the colouring's vertex count differs from the player
    /// count.
    pub fn step_coloured(
        &self,
        coloring: &Coloring,
        t: u64,
        seed: u64,
        profile: &mut [usize],
        scratch: &mut Scratch,
    ) -> usize {
        let n = self.game().num_players();
        assert_eq!(
            coloring.num_vertices(),
            n,
            "colouring covers a different player count"
        );
        debug_assert_eq!(profile.len(), n);
        let class = coloring.class_of_tick(t);
        let mut moved = 0;
        for &player in coloring.class(class) {
            self.update_distribution_into(player, profile, scratch);
            let strategy =
                sample_index_from_uniform(scratch.probs(), player_tick_uniform(seed, player, t));
            if profile[player] != strategy {
                moved += 1;
            }
            profile[player] = strategy;
        }
        moved
    }
}

impl<G: LocalGame + Sync, U: UpdateRule> DynamicsEngine<G, U> {
    /// One coloured tick, genuinely parallel: the colour class of tick `t`
    /// is chunked across `workers` rayon-scoped threads, each computing its
    /// players' new strategies against the **frozen** pre-tick profile
    /// (through the read-only [`LocalGame::utilities_for_frozen`] hook) into
    /// a staged buffer; the block is then applied at once. Returns the
    /// number of players that moved.
    ///
    /// Per-player RNG streams ([`player_tick_seed`]) make the result
    /// independent of the worker count, the chunking and the execution
    /// order, and — because a colour class is an independent set, so
    /// non-neighbours commute — bit-identical to the sequential in-place
    /// sweep [`Self::step_coloured`] from the same `(seed, t)`. The
    /// proptest harness pins this across rules × topologies.
    ///
    /// `workers = 0` resolves to one per available core; the work is run
    /// inline (no thread spawn) when a single worker would remain. `staged`
    /// is a caller-owned scratch buffer, recycled across ticks.
    ///
    /// # Panics
    /// Panics when the colouring's vertex count differs from the player
    /// count.
    pub fn step_coloured_par(
        &self,
        coloring: &Coloring,
        t: u64,
        seed: u64,
        profile: &mut [usize],
        staged: &mut Vec<usize>,
        workers: usize,
    ) -> usize {
        let n = self.game().num_players();
        assert_eq!(
            coloring.num_vertices(),
            n,
            "colouring covers a different player count"
        );
        debug_assert_eq!(profile.len(), n);
        let players = coloring.class(coloring.class_of_tick(t));
        staged.clear();
        staged.resize(players.len(), 0);

        let auto = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        let workers = if workers == 0 { auto } else { workers }
            .max(1)
            .min(players.len());

        if workers <= 1 {
            self.stage_class(players, t, seed, profile, staged);
        } else {
            let chunk = players.len().div_ceil(workers);
            let frozen: &[usize] = profile;
            rayon::scope(|s| {
                for (player_chunk, out_chunk) in players.chunks(chunk).zip(staged.chunks_mut(chunk))
                {
                    s.spawn(move |_| {
                        self.stage_class(player_chunk, t, seed, frozen, out_chunk);
                    });
                }
            });
        }

        let mut moved = 0;
        for (&player, &strategy) in players.iter().zip(staged.iter()) {
            if profile[player] != strategy {
                moved += 1;
            }
            profile[player] = strategy;
        }
        moved
    }

    /// Samples the new strategies of `players` against the frozen `profile`
    /// into `staged`, one `(seed, player, t)` stream per player. The
    /// per-worker kernel of [`Self::step_coloured_par`].
    fn stage_class(
        &self,
        players: &[usize],
        t: u64,
        seed: u64,
        profile: &[usize],
        staged: &mut [usize],
    ) {
        let mut utils: Vec<f64> = Vec::with_capacity(self.game().max_strategies());
        let mut probs: Vec<f64> = Vec::with_capacity(self.game().max_strategies());
        self.stage_class_with(players, t, seed, profile, staged, &mut utils, &mut probs);
    }

    /// [`Self::stage_class`] with caller-supplied utility/probability
    /// buffers, so pooled workers can reuse thread-local storage instead of
    /// allocating per dispatch.
    #[allow(clippy::too_many_arguments)]
    fn stage_class_with(
        &self,
        players: &[usize],
        t: u64,
        seed: u64,
        profile: &[usize],
        staged: &mut [usize],
        utils: &mut Vec<f64>,
        probs: &mut Vec<f64>,
    ) {
        let beta = self.beta();
        for (&player, slot) in players.iter().zip(staged.iter_mut()) {
            let m = self.game().num_strategies(player);
            utils.clear();
            utils.resize(m, 0.0);
            self.game().utilities_for_frozen(player, profile, utils);
            self.rule().fill_probs(beta, profile[player], utils, probs);
            *slot = sample_index_from_uniform(probs, player_tick_uniform(seed, player, t));
        }
    }

    /// One coloured tick through the persistent [`WorkerPool`]: the same
    /// frozen-profile staged update as [`Self::step_coloured_par`], but the
    /// chunks are claimed by pool workers that were spawned once and wait
    /// between ticks, instead of a fresh `rayon::scope` thread spawn per
    /// tick. Returns the number of players that moved.
    ///
    /// Worker-count resolution goes through [`RuntimeConfig`]: classes
    /// narrower than `min_class_size` — and any configuration resolving to
    /// a single stepping thread — run the sequential in-place class sweep
    /// ([`Self::step_coloured`]) inline on the caller with **zero dispatch
    /// overhead** (the pool's dispatch counter does not move), which is
    /// the narrow-class amortisation guard. Wider classes are chunked
    /// across the caller plus pool workers, each staging into its slice of
    /// `staged` with thread-local utility buffers.
    ///
    /// Per-player counter-derived draws ([`player_tick_seed`]) make the
    /// result independent of worker count, chunking, wait policy and
    /// chunk→thread assignment, and bit-identical to both
    /// [`Self::step_coloured`] and [`Self::step_coloured_par`] from the
    /// same `(seed, t)` — pinned by the pooled proptest harness.
    ///
    /// # Panics
    /// Panics when the colouring's vertex count differs from the player
    /// count.
    #[allow(clippy::too_many_arguments)]
    pub fn step_coloured_pooled(
        &self,
        coloring: &Coloring,
        t: u64,
        seed: u64,
        profile: &mut [usize],
        scratch: &mut Scratch,
        staged: &mut Vec<usize>,
        pool: &WorkerPool,
        config: &RuntimeConfig,
    ) -> usize {
        let n = self.game().num_players();
        assert_eq!(
            coloring.num_vertices(),
            n,
            "colouring covers a different player count"
        );
        debug_assert_eq!(profile.len(), n);
        let players = coloring.class(coloring.class_of_tick(t));
        let workers = config.class_workers(players.len()).min(pool.workers() + 1);
        if workers <= 1 {
            return self.step_coloured(coloring, t, seed, profile, scratch);
        }

        staged.clear();
        staged.resize(players.len(), 0);
        // Cache-blocked sweep: the even split is capped at
        // `RuntimeConfig::block_players` so every chunk's working set
        // (strategy bytes + staged slots + the neighbour rows it touches)
        // stays L2-resident; the pool's dynamic claim counter load-balances
        // the surplus chunks. Chunking never changes results — every draw is
        // keyed by `(seed, player, t)` alone.
        let chunk = config.sweep_chunk(players.len(), workers);
        let frozen: &[usize] = profile;
        pool.for_each_chunk(staged, chunk, workers, &|index, out| {
            let start = index * chunk;
            let player_chunk = &players[start..start + out.len()];
            STAGE_BUFFERS.with(|buffers| {
                let (utils, probs) = &mut *buffers.borrow_mut();
                self.stage_class_with(player_chunk, t, seed, frozen, out, utils, probs);
            });
        });

        let mut moved = 0;
        for (&player, &strategy) in players.iter().zip(staged.iter()) {
            if profile[player] != strategy {
                moved += 1;
            }
            profile[player] = strategy;
        }
        moved
    }
}

std::thread_local! {
    /// Per-thread staging buffers (utilities, probabilities) for the pooled
    /// coloured path: pool workers persist across ticks, so these warm up
    /// once per thread instead of allocating per dispatch (the former
    /// per-call `Vec::with_capacity` in `stage_class` was a measurable part
    /// of the scoped path's orchestration overhead).
    pub(crate) static STAGE_BUFFERS: std::cell::RefCell<(Vec<f64>, Vec<f64>)> =
        const { std::cell::RefCell::new((Vec::new(), Vec::new())) };
}

impl<G: logit_games::Game, U: UpdateRule> DynamicsEngine<G, U> {
    /// The exact transition matrix of one coloured block tick for `class`:
    /// every player of the class revises against the frozen profile, the
    /// rest stay put — `P_C(x, y) = Π_{i ∈ C} σ_i(y_i | x)` when `y` agrees
    /// with `x` off `C`, else 0.
    ///
    /// For a proper colouring of a [`LocalGame`] this equals the ordered
    /// product of the class's single-player kernels (non-neighbours
    /// commute) — the identity the test harness pins.
    pub fn transition_matrix_coloured_block(&self, coloring: &Coloring, class: usize) -> Matrix {
        let space = self.space();
        let size = space.size();
        let n = self.game().num_players();
        assert_eq!(
            coloring.num_vertices(),
            n,
            "colouring covers a different player count"
        );
        let players = coloring.class(class);
        let mut in_class = vec![false; n];
        for &i in players {
            in_class[i] = true;
        }
        let mut p = Matrix::zeros(size, size);
        let mut scratch = Scratch::for_game(self.game());
        let mut profile = vec![0usize; n];
        let mut per_player: Vec<Vec<f64>> = vec![Vec::new(); players.len()];
        for x in 0..size {
            space.write_profile(x, &mut profile);
            for (&player, probs) in players.iter().zip(per_player.iter_mut()) {
                self.update_distribution_into(player, &mut profile, &mut scratch);
                probs.clear();
                probs.extend_from_slice(scratch.probs());
            }
            'targets: for y in 0..size {
                let mut prob = 1.0;
                for i in 0..n {
                    if !in_class[i] && space.strategy_of(y, i) != profile[i] {
                        continue 'targets;
                    }
                }
                for (&player, probs) in players.iter().zip(per_player.iter()) {
                    prob *= probs[space.strategy_of(y, player)];
                    if prob == 0.0 {
                        break;
                    }
                }
                p[(x, y)] = prob;
            }
        }
        p
    }

    /// The exact transition matrix of one full coloured **round** — every
    /// colour class once, in colour order: the ordered block product
    /// `P_{C_0} · P_{C_1} ⋯ P_{C_{m−1}}`. One round equals `n` player
    /// updates, like a systematic sweep (and for a proper colouring of a
    /// `LocalGame` it *is* a sweep in a permuted player order, so the round
    /// chain keeps the Gibbs measure stationary for the reversible rules —
    /// where the all-logit block chain does not).
    pub fn transition_matrix_coloured_round(&self, coloring: &Coloring) -> Matrix {
        let mut p = self.transition_matrix_coloured_block(coloring, 0);
        for class in 1..coloring.num_classes() {
            p = p.matmul(&self.transition_matrix_coloured_block(coloring, class));
        }
        p
    }

    /// The coloured round matrix as a validated Markov chain — the exact
    /// object [`ColouredBlocks`] simulates, in the style of
    /// [`transition_chain_all_logit`](crate::dynamics::DynamicsEngine::transition_chain_all_logit).
    pub fn transition_chain_coloured_round(&self, coloring: &Coloring) -> MarkovChain {
        MarkovChain::new(self.transition_matrix_coloured_round(coloring))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::LogitDynamics;
    use crate::rules::{Fermi, ImitateBetter, Logit, MetropolisLogit, NoisyBestResponse};
    use crate::schedules::AllLogit;
    use logit_games::{CoordinationGame, GraphicalCoordinationGame, IsingGame};
    use logit_graphs::GraphBuilder;
    use logit_markov::{stationary_distribution, total_variation};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ring_dynamics(n: usize, beta: f64) -> LogitDynamics<GraphicalCoordinationGame> {
        LogitDynamics::new(
            GraphicalCoordinationGame::new(
                GraphBuilder::ring(n),
                CoordinationGame::from_deltas(2.0, 1.0),
            ),
            beta,
        )
    }

    #[test]
    fn random_block_selects_k_distinct_sorted_players() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut out = Vec::new();
        for k in 1..=6 {
            let schedule = RandomBlock::new(k);
            assert!(schedule.parallel());
            assert_eq!(schedule.block_size(), k);
            for t in 0..50 {
                schedule.select_players(t, 6, &mut rng, &mut out);
                assert_eq!(out.len(), k, "exactly k players per tick");
                assert!(out.windows(2).all(|w| w[0] < w[1]), "distinct, ascending");
                assert!(out.iter().all(|&p| p < 6));
            }
        }
        // k = n selects everyone — the AllLogit update set.
        RandomBlock::new(6).select_players(0, 6, &mut rng, &mut out);
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn random_block_consumes_exactly_k_draws() {
        let mut a = StdRng::seed_from_u64(11);
        let mut b = StdRng::seed_from_u64(11);
        let mut out = Vec::new();
        RandomBlock::new(3).select_players(0, 10, &mut a, &mut out);
        for j in 7..10usize {
            let _ = b.gen_range(0..j + 1);
        }
        assert_eq!(a.gen::<u64>(), b.gen::<u64>(), "streams in the same spot");
    }

    #[test]
    #[should_panic(expected = "exceeds the player count")]
    fn oversized_random_block_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut out = Vec::new();
        RandomBlock::new(7).select_players(0, 6, &mut rng, &mut out);
    }

    #[test]
    fn coloured_blocks_cycle_classes_and_consume_no_randomness() {
        let coloring = greedy_coloring(&GraphBuilder::ring(6));
        let schedule = ColouredBlocks::new(coloring.clone());
        assert!(schedule.parallel());
        assert_eq!(schedule.name(), "coloured_blocks");
        let mut rng = StdRng::seed_from_u64(5);
        let mut out = Vec::new();
        for t in 0..6u64 {
            schedule.select_players(t, 6, &mut rng, &mut out);
            assert_eq!(out, coloring.class(coloring.class_of_tick(t)));
        }
        let mut fresh = StdRng::seed_from_u64(5);
        assert_eq!(rng.gen::<u64>(), fresh.gen::<u64>(), "no draws consumed");
    }

    #[test]
    fn coloured_step_paths_are_bit_identical_for_every_worker_count() {
        let d = ring_dynamics(12, 1.3);
        let coloring = coloring_for_game(d.game());
        let mut scratch = Scratch::for_game(d.game());
        let mut staged = Vec::new();
        let seed = 0xC0DE;
        for workers in [0usize, 1, 2, 3, 5] {
            let mut seq = vec![0usize; 12];
            let mut par = vec![0usize; 12];
            for t in 0..40u64 {
                let moved_seq = d.step_coloured(&coloring, t, seed, &mut seq, &mut scratch);
                let moved_par =
                    d.step_coloured_par(&coloring, t, seed, &mut par, &mut staged, workers);
                assert_eq!(seq, par, "diverged at t = {t} with {workers} workers");
                assert_eq!(moved_seq, moved_par);
            }
        }
    }

    #[test]
    fn pooled_coloured_steps_match_both_existing_paths() {
        use crate::runtime::WaitPolicy;
        let d = ring_dynamics(12, 1.3);
        let coloring = coloring_for_game(d.game());
        let seed = 0xC0DE;
        for policy in WaitPolicy::ALL {
            let config = RuntimeConfig {
                workers: 3,
                wait_policy: policy,
                min_class_size: 0,
                ..RuntimeConfig::default()
            };
            let pool = WorkerPool::new(&config);
            let mut scratch = Scratch::for_game(d.game());
            let mut staged = Vec::new();
            let mut staged_scoped = Vec::new();
            let mut seq = vec![0usize; 12];
            let mut scoped = vec![0usize; 12];
            let mut pooled = vec![0usize; 12];
            let mut seq_scratch = Scratch::for_game(d.game());
            for t in 0..40u64 {
                let moved_seq = d.step_coloured(&coloring, t, seed, &mut seq, &mut seq_scratch);
                let moved_scoped =
                    d.step_coloured_par(&coloring, t, seed, &mut scoped, &mut staged_scoped, 3);
                let moved_pooled = d.step_coloured_pooled(
                    &coloring,
                    t,
                    seed,
                    &mut pooled,
                    &mut scratch,
                    &mut staged,
                    &pool,
                    &config,
                );
                assert_eq!(seq, pooled, "pooled diverged at t = {t} ({policy:?})");
                assert_eq!(scoped, pooled, "scoped diverged at t = {t} ({policy:?})");
                assert_eq!(moved_seq, moved_pooled);
                assert_eq!(moved_scoped, moved_pooled);
            }
        }
    }

    #[test]
    fn narrow_classes_bypass_the_pool_entirely() {
        let d = ring_dynamics(12, 1.3);
        let coloring = coloring_for_game(d.game());
        let widest = (0..coloring.num_classes())
            .map(|c| coloring.class(c).len())
            .max()
            .expect("at least one class");

        // Threshold above every class width: all ticks must run the inline
        // sequential sweep, so the pool's dispatch counter stays at zero.
        let narrow = RuntimeConfig {
            workers: 3,
            min_class_size: widest + 1,
            ..RuntimeConfig::default()
        };
        let pool = WorkerPool::new(&narrow);
        let mut scratch = Scratch::for_game(d.game());
        let mut staged = Vec::new();
        let mut inline_profile = vec![0usize; 12];
        for t in 0..2 * coloring.num_classes() as u64 {
            d.step_coloured_pooled(
                &coloring,
                t,
                7,
                &mut inline_profile,
                &mut scratch,
                &mut staged,
                &pool,
                &narrow,
            );
        }
        assert_eq!(
            pool.dispatches(),
            0,
            "classes below min_class_size must never reach the pool"
        );

        // Threshold zero: every (multi-player) class must dispatch, and the
        // trajectory must not change — only the execution strategy does.
        let wide = RuntimeConfig {
            workers: 3,
            min_class_size: 0,
            ..RuntimeConfig::default()
        };
        let mut pooled_profile = vec![0usize; 12];
        for t in 0..2 * coloring.num_classes() as u64 {
            d.step_coloured_pooled(
                &coloring,
                t,
                7,
                &mut pooled_profile,
                &mut scratch,
                &mut staged,
                &pool,
                &wide,
            );
        }
        assert!(
            pool.dispatches() > 0,
            "wide classes above the threshold must engage the pool"
        );
        assert_eq!(
            inline_profile, pooled_profile,
            "the threshold changes the execution strategy, never the trajectory"
        );
    }

    #[test]
    fn coloured_round_hits_every_player_exactly_once() {
        let d = ring_dynamics(9, 0.9);
        let coloring = coloring_for_game(d.game());
        let mut hits = [0usize; 9];
        for t in 0..coloring.num_classes() as u64 {
            for &p in coloring.class(coloring.class_of_tick(t)) {
                hits[p] += 1;
            }
        }
        assert!(hits.iter().all(|&h| h == 1));
    }

    #[test]
    fn coloured_block_matrix_is_the_product_of_the_class_kernels() {
        // The commutation identity: for a proper colouring of a LocalGame,
        // the frozen-profile block kernel of a class equals the ordered
        // product of its single-player kernels.
        let d = ring_dynamics(4, 1.1);
        let coloring = coloring_for_game(d.game());
        for class in 0..coloring.num_classes() {
            let block = d.transition_matrix_coloured_block(&coloring, class);
            assert!(block.is_row_stochastic(1e-9));
            let players = coloring.class(class);
            let mut product = d.player_kernel(players[0]);
            for &p in &players[1..] {
                product = product.matmul(&d.player_kernel(p));
            }
            assert!(
                block.max_abs_diff(&product) < 1e-12,
                "class {class} block differs from its kernel product"
            );
        }
    }

    #[test]
    fn coloured_round_chain_keeps_gibbs_stationary_where_all_logit_drifts() {
        // Moderate beta: the all-logit drift from Gibbs is clearest here
        // (TV ~ 8e-2 on this game; it shrinks again at high beta).
        let beta = 1.0;
        let d = ring_dynamics(5, beta);
        let coloring = coloring_for_game(d.game());
        let round = d.transition_chain_coloured_round(&coloring);
        assert!(round.is_ergodic());
        let gibbs = d.gibbs();
        let pi_round = stationary_distribution(&round);
        assert!(
            total_variation(&pi_round, &gibbs) < 1e-9,
            "the coloured round must keep Gibbs stationary"
        );
        // The all-logit block chain's stationary law is a different object.
        let pi_block = stationary_distribution(&d.transition_chain_all_logit());
        assert!(total_variation(&pi_block, &gibbs) > 1e-3);
    }

    #[test]
    fn coloured_paths_cover_every_rule_on_an_ising_torus() {
        let game = IsingGame::zero_field(GraphBuilder::torus(3, 4), 0.8);
        let coloring = coloring_for_game(&game);
        assert!(coloring.is_proper(&interaction_graph(&game)));
        fn check<U: UpdateRule>(game: &IsingGame, coloring: &Coloring, rule: U) {
            let d = DynamicsEngine::with_rule(game.clone(), rule, 1.2);
            let mut scratch = Scratch::for_game(game);
            let mut staged = Vec::new();
            let mut seq = vec![0usize; 12];
            let mut par = vec![0usize; 12];
            for t in 0..3 * coloring.num_classes() as u64 {
                d.step_coloured(coloring, t, 7, &mut seq, &mut scratch);
                d.step_coloured_par(coloring, t, 7, &mut par, &mut staged, 3);
                assert_eq!(seq, par, "rule diverged at t = {t}");
            }
        }
        check(&game, &coloring, Logit);
        check(&game, &coloring, MetropolisLogit);
        check(&game, &coloring, NoisyBestResponse::new(0.2));
        check(&game, &coloring, Fermi);
        check(&game, &coloring, ImitateBetter::new(0.1));
    }

    #[test]
    fn scheduled_coloured_blocks_freeze_the_other_classes() {
        let d = ring_dynamics(8, 60.0);
        let schedule = ColouredBlocks::for_game(d.game());
        let mut rng = StdRng::seed_from_u64(2);
        let mut scratch = Scratch::for_game(d.game());
        let mut profile = vec![0usize; 8];
        for t in 0..16u64 {
            let class: std::collections::BTreeSet<usize> = schedule
                .coloring()
                .class(schedule.coloring().class_of_tick(t))
                .iter()
                .copied()
                .collect();
            let before = profile.clone();
            d.step_scheduled(&schedule, t, &mut profile, &mut scratch, &mut rng);
            for i in 0..8 {
                if !class.contains(&i) {
                    assert_eq!(profile[i], before[i], "tick {t} moved off-class player {i}");
                }
            }
        }
    }

    #[test]
    fn random_block_runs_through_the_scheduled_engine_at_large_n() {
        use crate::observables::StrategyFraction;
        use crate::simulate::Simulator;
        let game = GraphicalCoordinationGame::new(
            GraphBuilder::ring(400),
            CoordinationGame::from_deltas(3.0, 1.0),
        );
        let d = LogitDynamics::new(game, 2.0);
        let sim = Simulator::new(23, 4);
        let obs = StrategyFraction::new(0, "zeros");
        // k = 40 players per tick: 200 ticks = 8000 updates.
        let result = sim.run_profiles_scheduled(
            &d,
            &RandomBlock::new(40),
            &vec![1usize; 400],
            200,
            50,
            &obs,
        );
        assert_eq!(result.final_values.len(), 4);
        assert!(result.law().mean() > 0.1, "risk-dominant zeros spread");
        // And the pipelined farm path is bit-identical through the same schedule.
        let pipelined = sim.run_profiles_scheduled_pipelined(
            &d,
            &RandomBlock::new(40),
            &vec![1usize; 400],
            200,
            50,
            &obs,
        );
        assert_eq!(result.final_values, pipelined.final_values);
    }

    #[test]
    fn coloured_blocks_run_through_simulator_pipeline_and_tempering() {
        use crate::observables::PotentialObservable;
        use crate::simulate::Simulator;
        use crate::tempering::TemperingEnsemble;
        let game = GraphicalCoordinationGame::new(
            GraphBuilder::torus(3, 3),
            CoordinationGame::from_deltas(2.0, 1.0),
        );
        let schedule = ColouredBlocks::for_game(&game);
        let d = LogitDynamics::new(game.clone(), 1.0);
        let sim = Simulator::new(17, 8);
        let obs = PotentialObservable::new(game.clone());
        let start = vec![0usize; 9];
        let sequential = sim.run_profiles_scheduled(&d, &schedule, &start, 30, 10, &obs);
        let pipelined = sim.run_profiles_scheduled_pipelined(&d, &schedule, &start, 30, 10, &obs);
        assert_eq!(sequential.final_values, pipelined.final_values);
        assert_eq!(sequential.times, pipelined.times);
        // run_tempered accepts the schedule unchanged (Arc<G> is a LocalGame
        // too, so even the coloured engine paths exist on the rungs).
        let ensemble = TemperingEnsemble::new(game, Logit, &[0.5, 1.0]);
        let tempered = sim.run_tempered(&ensemble, &schedule, &start, 10, 3, 5, &obs);
        assert_eq!(tempered.final_values.len(), 8);
        let again = sim.run_tempered(&ensemble, &schedule, &start, 10, 3, 5, &obs);
        assert_eq!(tempered.final_values, again.final_values);
    }

    #[test]
    fn player_tick_seeds_do_not_collide_locally() {
        let mut seen = std::collections::HashSet::new();
        for player in 0..64 {
            for t in 0..64 {
                assert!(
                    seen.insert(player_tick_seed(0xABCD, player, t)),
                    "seed collision at player {player}, tick {t}"
                );
            }
        }
    }

    #[test]
    fn coloring_for_game_colours_the_implicit_congestion_graph() {
        let game = logit_games::CongestionGame::load_balancing(5, 2, 1.0);
        // Load balancing couples every pair: the interaction graph is K5,
        // so the colouring needs 5 classes of one player each.
        let coloring = coloring_for_game(&game);
        assert_eq!(coloring.num_classes(), 5);
        assert!(coloring.classes().all(|c| c.len() == 1));
    }

    #[test]
    fn all_logit_remains_a_different_dynamics_than_coloured_rounds() {
        // Sanity cross-check of the module claim: at huge beta the
        // mismatched two-colour profile oscillates under all-logit but
        // settles under coloured blocks (each class sees the other frozen).
        let d = ring_dynamics(4, 60.0);
        let coloring = coloring_for_game(d.game());
        let mut rng = StdRng::seed_from_u64(6);
        let mut scratch = Scratch::for_game(d.game());
        let mut all_logit = vec![0usize, 1, 0, 1];
        d.step_scheduled(&AllLogit, 0, &mut all_logit, &mut scratch, &mut rng);
        assert_eq!(all_logit, vec![1, 0, 1, 0], "all-logit anti-coordinates");
        let mut coloured = vec![0usize, 1, 0, 1];
        let schedule = ColouredBlocks::new(coloring);
        for t in 0..2 {
            d.step_scheduled(&schedule, t, &mut coloured, &mut scratch, &mut rng);
        }
        let consensus = coloured.iter().all(|&s| s == coloured[0]);
        assert!(
            consensus,
            "a coloured round reaches consensus: {coloured:?}"
        );
    }
}
