//! PPL-style pipelined ensemble runner: a farm of step workers feeding a
//! streamed observable reducer.
//!
//! [`Simulator::run_profiles`](crate::simulate::Simulator::run_profiles)
//! evaluates observables on the hot stepping thread and joins every replica
//! at an end-of-run barrier before folding statistics. This module
//! restructures the ensemble as a pipeline of stages, the farm shape of the
//! parallel-pipeline (PPL) libraries:
//!
//! ```text
//!  emitter                 step workers                reducer
//!  (atomic replica        (one seeded ChaCha           (dedicated thread)
//!   counter)               stream per replica)
//!     │   claim next   ┌──────────────────┐  bounded   ┌──────────────────┐
//!     ├───────────────▶│ advance engine in │  channel   │ evaluate the     │
//!     │                │ fixed tick chunks,├───────────▶│ observable, fold │
//!     ├───────────────▶│ snapshot profiles │  batches   │ in replica order │
//!     │                │ at sample times   │            │ into RunningStats│
//!     └───────────────▶└──────────────────┘            └──────────────────┘
//! ```
//!
//! * **Emitter** — a shared atomic counter; workers claim replica indices as
//!   they free up (work-stealing over replicas, like the `Simulator`'s rayon
//!   ensemble but with streaming output instead of an ordered collect).
//! * **Step workers** — threads of the [`Simulator`]'s persistent
//!   [`WorkerPool`](crate::runtime::WorkerPool) (spawned once, reused
//!   across runs — not per-run thread spawns). Each claims a replica,
//!   seeds the *same* deterministic ChaCha stream the sequential
//!   path derives, and advances the monomorphised
//!   [`DynamicsEngine`](crate::dynamics::DynamicsEngine) hot loop in
//!   fixed-size tick chunks. At sample times it snapshots the profile into
//!   the current [`SnapshotBatch`]; at chunk boundaries the batch is pushed
//!   through a **bounded** channel (backpressure: a slow reducer throttles
//!   the workers instead of letting snapshots pile up unboundedly). No
//!   observable is evaluated on the stepping thread.
//! * **Reducer** — a dedicated stage (the calling thread) that drains the
//!   channel *while replicas are still running*: it evaluates the observable
//!   on each snapshot and folds the value through an
//!   [`OrderedSeriesReducer`] into
//!   [`SeriesAccumulator`](crate::observables::SeriesAccumulator)
//!   statistics. Replicas stream into the reducer as they finish chunks —
//!   there is no end-of-run barrier.
//!
//! **Bit-identity contract.** The pipelined runner is pinned to produce
//! exactly the bytes of the sequential path: replica streams use the same
//! seed derivation and consume randomness identically (snapshots draw
//! nothing), observable evaluation is deterministic on the snapshot, and the
//! [`OrderedSeriesReducer`] restores strict replica order per recorded time
//! before touching the Welford accumulators — so chunking, channel capacity,
//! worker count and arrival order are all unobservable in the result. The
//! proptest harness asserts this for every rule × schedule combination.
//!
//! The rule/schedule seam stays a monomorphised generic end-to-end: workers
//! call the same `step_profile`/`step_scheduled` loop as the sequential
//! path, no `dyn` anywhere on the hot path.
//!
//! **Snapshot pooling.** Spent snapshot buffers travel back from the reducer
//! to the workers through an unbounded return channel ([`SnapshotPool`]):
//! at dense sampling rates the farm stops allocating per sample and recycles
//! a small working set of buffers bounded by the in-flight batch count.
//! Pooling is non-blocking on both sides and invisible in the results — the
//! bit-identity contract is asserted through this path.
//!
//! **Channel backends.** The worker→reducer boundary is pluggable: the
//! [`channel`] module abstracts it behind the
//! [`ChannelBackend`](channel::ChannelBackend) trait with three racing
//! implementations (`sync_channel`, lock-free SPSC rings, lock-free MPMC),
//! selected per run via [`PipelineConfig::backend`]. All of them preserve
//! the bit-identity contract in the default ordered-reducer mode; the
//! opt-in [`ReducerMode::Unordered`] trades that pin for merge-on-arrival
//! folding with zero reordering stalls, and [`PipelineConfig::adaptive`]
//! lets the farm retune its chunking from observed reducer lag (see
//! [`backpressure`](self)).

pub mod channel;

mod backpressure;

use self::channel::{AnyChannelReceiver, AnyChannelSender, ChannelReceiver, ChannelSender};
use crate::dynamics::{DynamicsEngine, Scratch};
use crate::observables::{ProfileObservable, SeriesAccumulator};
use crate::rules::UpdateRule;
use crate::runtime::WorkerPool;
use crate::schedules::{SelectionSchedule, UniformSingle};
use crate::simulate::{replica_seed, sample_times, ProfileEnsembleResult, Simulator};
use backpressure::LagController;
use logit_games::Game;
use logit_linalg::stats::RunningStats;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Mutex;

pub use self::channel::ChannelBackendKind;

/// Tuning knobs of the pipelined runner. The defaults are safe everywhere;
/// none of them affect the result (the bit-identity contract), only
/// throughput and memory.
///
/// * `chunk_ticks` — engine ticks a worker advances a replica between
///   channel flushes. Larger chunks amortise channel traffic (one send per
///   chunk that contains a sample time); smaller chunks smooth reducer
///   utilisation. Keep it well above the per-tick cost crossover: at the
///   default sampling rates a chunk carries at most a few snapshots.
/// * `channel_capacity` — in-flight batches before senders block. This is
///   the backpressure bound: peak snapshot memory is
///   `O(capacity · batch · n)`.
///
/// The step-worker count is no longer a pipeline knob: it comes from the
/// [`Simulator`]'s [`RuntimeConfig`](crate::runtime::RuntimeConfig)
/// (`workers`, capped at the replica count), the same notion of "how many
/// threads" the coloured and tempered paths use. The reducer runs on the
/// calling thread in addition.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Ticks per worker chunk (≥ 1). With [`adaptive`](Self::adaptive) set
    /// this is the *base* the controller returns to when the reducer keeps
    /// up.
    pub chunk_ticks: u64,
    /// Bounded-channel capacity in batches (≥ 1). Per-lane backends split
    /// this total across the lanes (floor division, at least one slot per
    /// lane — see
    /// [`ChannelBackendKind::effective_capacity`](channel::ChannelBackendKind::effective_capacity)
    /// for the honest bound).
    pub channel_capacity: usize,
    /// Which channel implementation carries worker→reducer batches.
    /// Defaults to [`ChannelBackendKind::from_env`] (`sync_channel` unless
    /// `LOGIT_CHANNEL_BACKEND` says otherwise); never affects results in
    /// [`ReducerMode::Ordered`].
    pub backend: ChannelBackendKind,
    /// How the reducer folds arriving batches; see [`ReducerMode`].
    pub reducer: ReducerMode,
    /// Adaptive backpressure: let the farm retune its effective chunk size
    /// from observed reducer lag (bigger chunks while the reducer is the
    /// bottleneck, back to `chunk_ticks` when it keeps up). Chunk
    /// boundaries are result-invariant, so this keeps the bit-identity
    /// pin.
    pub adaptive: bool,
}

/// How the farm's reducer folds arriving snapshot batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReducerMode {
    /// Restore strict replica order per recorded time before folding (the
    /// [`OrderedSeriesReducer`]): the pipelined result is **bit-identical**
    /// to the sequential path, at the cost of buffering early arrivals.
    #[default]
    Ordered,
    /// Fold every batch the moment it lands via the partition-invariant
    /// [`SeriesAccumulator::merge`]: no reordering stalls and O(1) pending
    /// state, but the Welford fold order follows arrival order — counts,
    /// min/max, finals and the empirical law stay *exactly* equal to the
    /// ordered result, while means/variances agree only to floating-point
    /// rounding. Opt-in for throughput-first runs.
    Unordered,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            chunk_ticks: 4096,
            channel_capacity: 64,
            backend: ChannelBackendKind::from_env(),
            reducer: ReducerMode::Ordered,
            adaptive: false,
        }
    }
}

/// Why a [`PipelineConfig`] was rejected. The service layer admits jobs
/// carrying client-supplied pipeline knobs, so the validation that used to
/// live only in `assert!`s is also available as a typed error a server can
/// return instead of panicking a shared worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipelineConfigError {
    /// `chunk_ticks` was zero.
    ZeroChunkTicks,
    /// `channel_capacity` was zero.
    ZeroChannelCapacity,
}

impl std::fmt::Display for PipelineConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineConfigError::ZeroChunkTicks => write!(f, "chunk_ticks must be at least 1"),
            PipelineConfigError::ZeroChannelCapacity => {
                write!(f, "channel_capacity must be at least 1")
            }
        }
    }
}

impl std::error::Error for PipelineConfigError {}

impl PipelineConfig {
    /// Checks the knobs without panicking — the admission-time counterpart
    /// of the entry-path `assert!`s, for callers (like a job server) that
    /// must turn a malformed configuration into a typed rejection rather
    /// than a panic.
    pub fn try_validate(&self) -> Result<(), PipelineConfigError> {
        if self.chunk_ticks < 1 {
            return Err(PipelineConfigError::ZeroChunkTicks);
        }
        if self.channel_capacity < 1 {
            return Err(PipelineConfigError::ZeroChannelCapacity);
        }
        Ok(())
    }

    pub(crate) fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("{e}");
        }
    }
}

/// A shareable cancellation flag for pipelined runs: clone it, hand one
/// clone to [`Simulator::run_profiles_pipelined_cancellable_with`] and keep
/// the other; [`cancel`](CancelToken::cancel) from any thread makes the
/// farm's workers stop claiming work at their next chunk boundary (the
/// emitter drains the remaining replicas as no-ops) and the run return
/// `None` instead of a result.
///
/// Cancellation is cooperative and chunk-granular: a worker mid-chunk
/// finishes the chunk it is stepping first. Cancelling an already-finished
/// run is a no-op on the workers but still makes the runner report `None` —
/// "cancelled" wins over "completed" whenever both raced, so callers see
/// one consistent outcome.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: std::sync::Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent, callable from any thread.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// One worker→reducer message: profile snapshots of a single replica at
/// consecutive sample times, taken during one tick chunk.
#[derive(Debug, Clone)]
pub struct SnapshotBatch {
    /// The replica (or tempering-ensemble) index the snapshots belong to.
    pub replica: usize,
    /// Index into the recorded-times grid of `profiles[0]`; entry `j` is the
    /// snapshot at recorded time `first_sample + j`.
    pub first_sample: usize,
    /// The profile snapshots, in sample order.
    pub profiles: Vec<Vec<usize>>,
}

/// One farm-channel message: either a worker payload or a job-completion
/// marker. The reducer exits after observing one [`FarmMsg::JobDone`] per
/// job, so farm termination never depends on channel disconnection (the
/// farm's sender outlives the reduction).
pub(crate) enum FarmMsg<M> {
    /// A worker-produced message.
    Payload(M),
    /// One job (panicked, skipped or completed) has finished.
    JobDone,
}

/// The sending half handed to farm workers: wraps the payload in
/// [`FarmMsg::Payload`] so workers cannot forge completion markers, and
/// carries the producer lane the backend may need (the SPSC rings key a
/// lane per pool-worker thread; single-queue backends ignore it).
pub(crate) struct FarmSender<M: Send> {
    tx: AnyChannelSender<FarmMsg<M>>,
    lane: usize,
    telemetry: FarmTelemetry,
}

impl<M: Send> FarmSender<M> {
    /// Sends one payload to the reducer; `Err` means the reducer hung up
    /// (the worker should stop producing).
    pub(crate) fn send(&self, message: M) -> Result<(), M> {
        let sent = self
            .tx
            .send(self.lane, FarmMsg::Payload(message))
            .map_err(|e| {
                match e {
                    FarmMsg::Payload(m) => m,
                    // We only ever send Payload here.
                    FarmMsg::JobDone => unreachable!("payload send returned a marker"),
                }
            });
        if sent.is_ok() {
            self.telemetry.batches_sent.inc();
            self.telemetry.in_flight.add(1.0);
        }
        sent
    }
}

/// Farm-channel instruments, registered once per [`farm`] call and cloned
/// (Arc-cheap, per job — never per message) into each sender. Zero-sized
/// without the `telemetry` feature.
#[derive(Clone)]
struct FarmTelemetry {
    /// `pipeline.batches_sent{backend="..."}` — payloads accepted by the
    /// channel, per backend (completion markers are not payloads).
    batches_sent: logit_telemetry::Counter,
    /// `pipeline.channel_in_flight` — payloads sent but not yet consumed
    /// by the reducer: the live channel occupancy.
    in_flight: logit_telemetry::Gauge,
    /// `pipeline.reducer_lag` — occupancy observed at each consume: the
    /// backlog the reducer was behind by when it picked up a payload.
    reducer_lag: logit_telemetry::Histogram,
}

impl FarmTelemetry {
    fn register(backend: ChannelBackendKind) -> Self {
        let registry = logit_telemetry::global();
        FarmTelemetry {
            batches_sent: registry
                .counter_labelled("pipeline.batches_sent", ("backend", backend.name())),
            in_flight: registry.gauge("pipeline.channel_in_flight"),
            reducer_lag: registry.histogram("pipeline.reducer_lag"),
        }
    }
}

/// The producer lane of the current thread for `tx`'s backend: the
/// pool-worker index on per-lane backends (every farm job runs on a pool
/// worker — `execute_with` never hands chunks to the caller), lane 0 on
/// single-queue backends.
fn farm_lane<M: Send>(tx: &AnyChannelSender<FarmMsg<M>>) -> usize {
    if tx.is_per_lane() {
        crate::runtime::current_worker_index()
            .expect("farm jobs must run on pool-worker threads for per-lane channel backends")
    } else {
        0
    }
}

/// The receiving half handed to the reducer: iterates worker payloads and
/// ends (returns `None`) once every job has reported done.
pub(crate) struct FarmReceiver<M: Send> {
    rx: AnyChannelReceiver<FarmMsg<M>>,
    jobs_remaining: usize,
    telemetry: FarmTelemetry,
}

impl<M: Send> Iterator for FarmReceiver<M> {
    type Item = M;

    fn next(&mut self) -> Option<M> {
        while self.jobs_remaining > 0 {
            match self.rx.recv() {
                Some(FarmMsg::Payload(message)) => {
                    // The occupancy *before* this consume is the backlog
                    // the reducer was behind by. Guarded so the disabled
                    // path never even loads the gauge cell.
                    if logit_telemetry::enabled() {
                        self.telemetry
                            .reducer_lag
                            .record(self.telemetry.in_flight.value());
                        self.telemetry.in_flight.add(-1.0);
                    }
                    return Some(message);
                }
                Some(FarmMsg::JobDone) => self.jobs_remaining -= 1,
                // Defensive: the farm keeps a sender alive for the whole
                // reduction, so disconnection before the last JobDone
                // cannot happen.
                None => return None,
            }
        }
        None
    }
}

/// The farm stage driver: dispatches `jobs` jobs to up to `workers` of the
/// persistent pool's threads (claimed through the pool's chunk-stealing
/// counter — no per-run thread spawns) that push messages into a bounded
/// channel, while `reduce` drains the channel on the calling thread
/// concurrently. Returns the reducer's result once every worker has
/// finished and the channel is drained.
///
/// A worker returns `false` when the reducer hung up (its sends fail); the
/// farm then skips the remaining jobs. Every job — completed, skipped or
/// panicked — posts exactly one [`FarmMsg::JobDone`], so the reducer's exit
/// is count-based and can never deadlock on a truncated stream. Panic
/// propagation favours root causes: a panicking worker's payload is
/// re-raised on the caller ahead of the reducer's own (typically
/// consequent, e.g. "incomplete reduction") panic; a panicking reducer
/// lets workers drain out and is then re-raised itself.
pub(crate) fn farm<M, W, F, R>(
    pool: &WorkerPool,
    backend: ChannelBackendKind,
    jobs: usize,
    workers: usize,
    capacity: usize,
    worker: W,
    reduce: F,
) -> R
where
    M: Send,
    W: Fn(usize, &FarmSender<M>) -> bool + Sync,
    F: FnOnce(FarmReceiver<M>) -> R,
{
    assert!(jobs >= 1, "farm needs at least one job");
    assert!(capacity >= 1, "channel capacity must be at least 1");
    let (tx, rx) = backend.open::<FarmMsg<M>>(capacity, pool.workers().max(1), pool.wait_policy());
    let telemetry = FarmTelemetry::register(backend);
    let stop = AtomicBool::new(false);
    let worker_panic: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);

    let job_fn = |job: usize| {
        let lane = farm_lane(&tx);
        if !stop.load(Ordering::Relaxed) {
            let sender = FarmSender {
                tx: tx.clone(),
                lane,
                telemetry: telemetry.clone(),
            };
            match catch_unwind(AssertUnwindSafe(|| worker(job, &sender))) {
                Ok(true) => {}
                // The reducer hung up: stop claiming real work, drain the
                // remaining jobs as no-ops.
                Ok(false) => stop.store(true, Ordering::Relaxed),
                Err(payload) => {
                    stop.store(true, Ordering::Relaxed);
                    let mut slot = worker_panic.lock().expect("panic slot poisoned");
                    if slot.is_none() {
                        *slot = Some(payload);
                    }
                }
            }
        }
        // Exactly one completion marker per job, whatever happened above:
        // the reducer's exit counts these. A failed send means the reducer
        // is gone, and with it the need for the marker.
        let _ = tx.send(lane, FarmMsg::JobDone);
    };

    let reduced = pool.execute_with(jobs, workers, &job_fn, || {
        catch_unwind(AssertUnwindSafe(|| {
            reduce(FarmReceiver {
                rx,
                jobs_remaining: jobs,
                telemetry: telemetry.clone(),
            })
        }))
    });

    if let Some(payload) = worker_panic.into_inner().expect("panic slot poisoned") {
        resume_unwind(payload);
    }
    match reduced {
        Ok(result) => result,
        Err(payload) => resume_unwind(payload),
    }
}

/// Snapshot-buffer recycling through a **return channel**: once the reducer
/// has evaluated a batch's profile snapshots it hands the buffers back to
/// the step workers, which overwrite them for the next sample instead of
/// allocating fresh `Vec`s — at dense sampling rates this removes the
/// `O(samples · n)` allocation churn of the snapshot stream.
///
/// The return channel is unbounded (returns never block the reducer) and
/// drained non-blockingly by workers (`try_lock` + `try_recv`): a worker
/// that finds the pool momentarily contended or empty just allocates, so
/// pooling can never deadlock or stall the farm. Buffers are fully
/// overwritten (`clear` + `extend_from_slice`) before reuse, so pooling is
/// invisible in the results — the bit-identity proptests run through this
/// path unchanged.
pub(crate) struct SnapshotPool {
    tx: Sender<Vec<Vec<usize>>>,
    rx: Mutex<Receiver<Vec<Vec<usize>>>>,
    fresh: AtomicUsize,
    reused: AtomicUsize,
}

impl SnapshotPool {
    pub(crate) fn new() -> Self {
        let (tx, rx) = channel();
        Self {
            tx,
            rx: Mutex::new(rx),
            fresh: AtomicUsize::new(0),
            reused: AtomicUsize::new(0),
        }
    }

    /// Reducer side: hands a consumed batch's buffers back to the workers.
    pub(crate) fn recycle(&self, buffers: Vec<Vec<usize>>) {
        // A send can only fail after every worker (receiver users) is done;
        // dropping the buffers is then exactly right.
        let _ = self.tx.send(buffers);
    }

    /// Worker side: produces an empty snapshot buffer, preferring a
    /// recycled one from `spare` (refilled from the return channel when it
    /// runs dry). Never blocks.
    pub(crate) fn acquire(&self, spare: &mut Vec<Vec<usize>>) -> Vec<usize> {
        if spare.is_empty() {
            if let Ok(rx) = self.rx.try_lock() {
                while let Ok(mut returned) = rx.try_recv() {
                    spare.append(&mut returned);
                }
            }
        }
        match spare.pop() {
            Some(mut buffer) => {
                self.reused.fetch_add(1, Ordering::Relaxed);
                buffer.clear();
                buffer
            }
            None => {
                self.fresh.fetch_add(1, Ordering::Relaxed);
                Vec::new()
            }
        }
    }

    /// Buffers allocated fresh (pool empty at acquisition).
    #[cfg(test)]
    pub(crate) fn fresh_count(&self) -> usize {
        self.fresh.load(Ordering::Relaxed)
    }

    /// Buffers served from the return channel.
    #[cfg(test)]
    pub(crate) fn reused_count(&self) -> usize {
        self.reused.load(Ordering::Relaxed)
    }
}

/// Order-restoring streaming frontier in front of a
/// [`SeriesAccumulator`]: accepts `(sample, replica, value)` triples in
/// **any** arrival order and folds them in strict replica order per recorded
/// time, buffering early arrivals in per-time pending maps.
///
/// Welford's update is not associative in floating point, so the fold order
/// *is* the bytes of the resulting moments; this frontier makes the
/// pipelined fold replay exactly the sequential replica-major fold, which is
/// what turns "statistically equivalent" into "bit-identical". Memory is
/// bounded by the out-of-order window (at most one pending value per replica
/// per time, in practice a few chunks' worth).
#[derive(Debug)]
pub struct OrderedSeriesReducer {
    acc: SeriesAccumulator,
    next_replica: Vec<usize>,
    pending: Vec<BTreeMap<usize, f64>>,
    replicas: usize,
}

impl OrderedSeriesReducer {
    /// A frontier over `num_times` recorded times and `replicas` replicas.
    pub fn new(num_times: usize, replicas: usize) -> Self {
        assert!(replicas >= 1, "need at least one replica");
        Self {
            acc: SeriesAccumulator::new(num_times),
            next_replica: vec![0; num_times],
            pending: vec![BTreeMap::new(); num_times],
            replicas,
        }
    }

    /// Offers one sample; folds it now if `replica` is the next expected one
    /// at that time (then drains any unblocked pending successors), buffers
    /// it otherwise.
    ///
    /// # Panics
    /// Panics on out-of-range indices or a duplicate `(sample, replica)`
    /// offer.
    pub fn offer(&mut self, sample: usize, replica: usize, value: f64) {
        assert!(replica < self.replicas, "replica index out of range");
        let next = &mut self.next_replica[sample];
        assert!(
            replica >= *next,
            "replica {replica} already folded at sample {sample}"
        );
        if replica == *next {
            self.acc.record(sample, replica, value);
            *next += 1;
            while let Some(v) = self.pending[sample].remove(next) {
                self.acc.record(sample, *next, v);
                *next += 1;
            }
        } else {
            let prev = self.pending[sample].insert(replica, value);
            assert!(
                prev.is_none(),
                "duplicate offer for replica {replica} at sample {sample}"
            );
        }
    }

    /// Number of samples folded into the accumulator so far (pending buffered
    /// samples not included).
    pub fn folded(&self) -> usize {
        self.next_replica.iter().sum()
    }

    /// Finishes the reduction.
    ///
    /// # Panics
    /// Panics when any `(sample, replica)` cell was never offered — a
    /// partial stream means a worker died or a batch went missing.
    pub fn finish(self) -> SeriesAccumulator {
        assert!(
            self.next_replica.iter().all(|&n| n == self.replicas),
            "reduction is incomplete: not every replica reported every sample"
        );
        self.acc
    }
}

impl Simulator {
    /// The pipelined counterpart of
    /// [`run_profiles`](Simulator::run_profiles): same replicas, same seeds,
    /// same result — but stepping and observable reduction run as pipeline
    /// stages (see the [module docs](crate::pipeline)), so observables are
    /// evaluated off the hot stepping threads and replicas stream into the
    /// reducer as they finish chunks, with no end-of-run barrier.
    ///
    /// Bit-identical to `run_profiles` under fixed seeds: same
    /// `EmpiricalLaw` samples, same `RunningStats` bytes (asserted by the
    /// test harness for every rule × schedule combination).
    pub fn run_profiles_pipelined<G, U, O>(
        &self,
        dynamics: &DynamicsEngine<G, U>,
        start: &[usize],
        steps: u64,
        sample_every: u64,
        observable: &O,
    ) -> ProfileEnsembleResult
    where
        G: Game + Sync,
        U: UpdateRule,
        O: ProfileObservable + Sync,
    {
        self.run_profiles_pipelined_with(
            dynamics,
            start,
            steps,
            sample_every,
            observable,
            &PipelineConfig::default(),
        )
    }

    /// [`run_profiles_pipelined`](Simulator::run_profiles_pipelined) with
    /// explicit [`PipelineConfig`] knobs (chunking, channel capacity, worker
    /// count). The knobs affect throughput and memory only, never the
    /// result.
    pub fn run_profiles_pipelined_with<G, U, O>(
        &self,
        dynamics: &DynamicsEngine<G, U>,
        start: &[usize],
        steps: u64,
        sample_every: u64,
        observable: &O,
        config: &PipelineConfig,
    ) -> ProfileEnsembleResult
    where
        G: Game + Sync,
        U: UpdateRule,
        O: ProfileObservable + Sync,
    {
        self.run_profiles_pipelined_inner::<G, U, UniformSingle, O>(
            dynamics,
            start,
            steps,
            sample_every,
            observable,
            None,
            config,
            None,
        )
        .expect("uncancellable runs always complete")
    }

    /// [`run_profiles_pipelined_with`](Simulator::run_profiles_pipelined_with)
    /// with a cooperative [`CancelToken`]: returns `None` — and stops the
    /// farm's workers from claiming further chunks — once the token is
    /// cancelled, `Some(result)` (bit-identical to the uncancelled path)
    /// otherwise. The service layer runs every job through this entry so a
    /// client hang-up can never strand a long ensemble on the shared pool.
    #[allow(clippy::too_many_arguments)]
    pub fn run_profiles_pipelined_cancellable_with<G, U, O>(
        &self,
        dynamics: &DynamicsEngine<G, U>,
        start: &[usize],
        steps: u64,
        sample_every: u64,
        observable: &O,
        config: &PipelineConfig,
        cancel: &CancelToken,
    ) -> Option<ProfileEnsembleResult>
    where
        G: Game + Sync,
        U: UpdateRule,
        O: ProfileObservable + Sync,
    {
        self.run_profiles_pipelined_inner::<G, U, UniformSingle, O>(
            dynamics,
            start,
            steps,
            sample_every,
            observable,
            None,
            config,
            Some(cancel),
        )
    }

    /// The cancellable counterpart of
    /// [`run_profiles_scheduled_pipelined_with`](Simulator::run_profiles_scheduled_pipelined_with);
    /// see [`run_profiles_pipelined_cancellable_with`](Simulator::run_profiles_pipelined_cancellable_with)
    /// for the cancellation semantics.
    #[allow(clippy::too_many_arguments)]
    pub fn run_profiles_scheduled_pipelined_cancellable_with<G, U, S, O>(
        &self,
        dynamics: &DynamicsEngine<G, U>,
        start: &[usize],
        steps: u64,
        sample_every: u64,
        observable: &O,
        schedule: &S,
        config: &PipelineConfig,
        cancel: &CancelToken,
    ) -> Option<ProfileEnsembleResult>
    where
        G: Game + Sync,
        U: UpdateRule,
        S: SelectionSchedule,
        O: ProfileObservable + Sync,
    {
        self.run_profiles_pipelined_inner(
            dynamics,
            start,
            steps,
            sample_every,
            observable,
            Some(schedule),
            config,
            Some(cancel),
        )
    }

    /// The pipelined counterpart of
    /// [`run_profiles_scheduled`](Simulator::run_profiles_scheduled): one
    /// schedule *tick* per step, any [`SelectionSchedule`].
    pub fn run_profiles_scheduled_pipelined<G, U, S, O>(
        &self,
        dynamics: &DynamicsEngine<G, U>,
        schedule: &S,
        start: &[usize],
        steps: u64,
        sample_every: u64,
        observable: &O,
    ) -> ProfileEnsembleResult
    where
        G: Game + Sync,
        U: UpdateRule,
        S: SelectionSchedule,
        O: ProfileObservable + Sync,
    {
        self.run_profiles_scheduled_pipelined_with(
            dynamics,
            start,
            steps,
            sample_every,
            observable,
            schedule,
            &PipelineConfig::default(),
        )
    }

    /// [`run_profiles_scheduled_pipelined`](Simulator::run_profiles_scheduled_pipelined)
    /// with explicit [`PipelineConfig`] knobs.
    #[allow(clippy::too_many_arguments)]
    pub fn run_profiles_scheduled_pipelined_with<G, U, S, O>(
        &self,
        dynamics: &DynamicsEngine<G, U>,
        start: &[usize],
        steps: u64,
        sample_every: u64,
        observable: &O,
        schedule: &S,
        config: &PipelineConfig,
    ) -> ProfileEnsembleResult
    where
        G: Game + Sync,
        U: UpdateRule,
        S: SelectionSchedule,
        O: ProfileObservable + Sync,
    {
        self.run_profiles_pipelined_inner(
            dynamics,
            start,
            steps,
            sample_every,
            observable,
            Some(schedule),
            config,
            None,
        )
        .expect("uncancellable runs always complete")
    }

    /// The one farm-backed runner behind every pipelined entry point.
    /// `cancel` is the cooperative kill switch: workers re-check it before
    /// every chunk they step (skipping the claim entirely once set, which
    /// drains the emitter's remaining replicas as no-ops), and the reducer
    /// returns `None` instead of asserting stream completeness — a
    /// cancelled run is the *only* way a partial stream is legal.
    #[allow(clippy::too_many_arguments)]
    fn run_profiles_pipelined_inner<G, U, S, O>(
        &self,
        dynamics: &DynamicsEngine<G, U>,
        start: &[usize],
        steps: u64,
        sample_every: u64,
        observable: &O,
        schedule: Option<&S>,
        config: &PipelineConfig,
        cancel: Option<&CancelToken>,
    ) -> Option<ProfileEnsembleResult>
    where
        G: Game + Sync,
        U: UpdateRule,
        S: SelectionSchedule,
        O: ProfileObservable + Sync,
    {
        crate::simulate::validate_start_profile(dynamics.game(), start);
        assert!(steps >= 1, "need at least one step");
        assert!(sample_every >= 1, "sampling period must be at least 1");
        config.validate();

        let times = sample_times(steps, sample_every);
        let replicas = self.replicas();
        let workers = self.runtime().farm_workers(replicas);
        let seed = self.master_seed();
        let times_ref = &times;
        // Snapshot buffers flow worker → reducer → (return channel) → worker.
        let pool = SnapshotPool::new();
        let pool = &pool;
        // Occupancy-driven retuning of the effective chunk size (no-op
        // unless `config.adaptive`); chunk boundaries are result-invariant,
        // so the bit-identity contract holds either way.
        let controller = LagController::new(
            config.adaptive,
            config.chunk_ticks,
            config.channel_capacity,
            workers.max(1),
        );
        let controller = &controller;

        let worker = |replica: usize, tx: &FarmSender<SnapshotBatch>| {
            // A cancelled job stops claiming work before seeding anything:
            // returning `false` trips the farm's stop flag, so the emitter
            // drains every remaining replica as a no-op.
            if cancel.is_some_and(|c| c.is_cancelled()) {
                return false;
            }
            // Same stream derivation as the sequential path: bit-identity
            // starts at the seed.
            let mut rng = ChaCha8Rng::seed_from_u64(replica_seed(seed, replica));
            let mut scratch = Scratch::for_game(dynamics.game());
            let mut profile = start.to_vec();
            let mut spare: Vec<Vec<usize>> = Vec::new();
            let mut t = 0u64;
            let mut next_sample = 0usize;
            while t < steps {
                if cancel.is_some_and(|c| c.is_cancelled()) {
                    // Mid-replica cancellation: abandon the stream at a
                    // chunk boundary. The reducer tolerates the partial
                    // stream because the token explains it.
                    return false;
                }
                let chunk_end = (t + controller.chunk_ticks()).min(steps);
                let first_sample = next_sample;
                let mut batch: Vec<Vec<usize>> = Vec::new();
                while t < chunk_end {
                    match schedule {
                        // The default uniform single-player path keeps the
                        // dedicated (and bit-compatible) fast path.
                        None => {
                            dynamics.step_profile(&mut profile, &mut scratch, &mut rng);
                        }
                        Some(s) => {
                            dynamics.step_scheduled(s, t, &mut profile, &mut scratch, &mut rng);
                        }
                    }
                    t += 1;
                    if next_sample < times_ref.len() && times_ref[next_sample] == t {
                        let mut snapshot = pool.acquire(&mut spare);
                        snapshot.extend_from_slice(&profile);
                        batch.push(snapshot);
                        next_sample += 1;
                    }
                }
                if !batch.is_empty() {
                    controller.before_send();
                    let send = tx.send(SnapshotBatch {
                        replica,
                        first_sample,
                        profiles: batch,
                    });
                    if send.is_err() {
                        // The reducer died; stop stepping, let its panic
                        // surface through the farm.
                        return false;
                    }
                }
            }
            true
        };

        let reducer_mode = config.reducer;
        let reduced: Option<(Vec<RunningStats>, Vec<f64>)> = farm(
            self.pool(),
            config.backend,
            replicas,
            workers,
            config.channel_capacity,
            worker,
            |rx| match reducer_mode {
                ReducerMode::Ordered => {
                    let mut reducer = OrderedSeriesReducer::new(times_ref.len(), replicas);
                    for batch in rx {
                        controller.after_recv();
                        for (j, snapshot) in batch.profiles.iter().enumerate() {
                            reducer.offer(
                                batch.first_sample + j,
                                batch.replica,
                                observable.evaluate_profile(snapshot),
                            );
                        }
                        // The snapshots are spent: recycle their buffers.
                        pool.recycle(batch.profiles);
                    }
                    // "Cancelled" wins over "completed": even a stream that
                    // happens to be whole is discarded once the token is
                    // set, so racing callers observe one outcome.
                    if cancel.is_some_and(|c| c.is_cancelled()) {
                        return None;
                    }
                    Some(reducer.finish().into_series_and_finals())
                }
                ReducerMode::Unordered => {
                    // Merge-on-arrival: fold each batch into its own small
                    // accumulator and merge immediately — no pending maps,
                    // no reordering stalls. `SeriesAccumulator::merge` is
                    // partition-invariant on counts/min/max/finals/law;
                    // only the Welford moments follow arrival order.
                    let mut acc = SeriesAccumulator::new(times_ref.len());
                    for batch in rx {
                        controller.after_recv();
                        let mut part = SeriesAccumulator::new(times_ref.len());
                        for (j, snapshot) in batch.profiles.iter().enumerate() {
                            part.record(
                                batch.first_sample + j,
                                batch.replica,
                                observable.evaluate_profile(snapshot),
                            );
                        }
                        acc.merge(part);
                        pool.recycle(batch.profiles);
                    }
                    if cancel.is_some_and(|c| c.is_cancelled()) {
                        return None;
                    }
                    assert!(
                        acc.series().iter().all(|s| s.count() == replicas as u64),
                        "reduction is incomplete: not every replica reported every sample"
                    );
                    Some(acc.into_series_and_finals())
                }
            },
        );

        let (series, final_values) = reduced?;
        Some(ProfileEnsembleResult {
            replicas,
            steps,
            sample_every,
            name: observable.name().to_string(),
            times,
            series,
            final_values,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::LogitDynamics;
    use crate::observables::{PotentialObservable, StrategyFraction};
    use crate::rules::{MetropolisLogit, NoisyBestResponse};
    use crate::runtime::RuntimeConfig;
    use crate::schedules::{AllLogit, SystematicSweep};
    use logit_games::{CoordinationGame, GraphicalCoordinationGame, WellGame};
    use logit_graphs::GraphBuilder;

    /// A `Simulator` with an explicit worker count (the knob that used to
    /// live on `PipelineConfig`).
    fn simulator_with_workers(seed: u64, replicas: usize, workers: usize) -> Simulator {
        Simulator::with_runtime(
            seed,
            replicas,
            RuntimeConfig {
                workers,
                ..RuntimeConfig::default()
            },
        )
    }

    /// A small pool for driving `farm` directly in tests.
    fn test_pool(workers: usize) -> WorkerPool {
        WorkerPool::new(&RuntimeConfig {
            workers,
            ..RuntimeConfig::default()
        })
    }

    /// Bitwise equality of two ensemble results — the bit-identity contract.
    fn assert_results_identical(a: &ProfileEnsembleResult, b: &ProfileEnsembleResult) {
        assert_eq!(a.replicas, b.replicas);
        assert_eq!(a.times, b.times);
        assert_eq!(a.final_values, b.final_values);
        assert_eq!(a.series.len(), b.series.len());
        for (sa, sb) in a.series.iter().zip(&b.series) {
            assert_eq!(sa.count(), sb.count());
            assert_eq!(sa.mean(), sb.mean());
            assert_eq!(sa.variance(), sb.variance());
            assert_eq!(sa.min(), sb.min());
            assert_eq!(sa.max(), sb.max());
        }
    }

    fn ring_dynamics(n: usize) -> LogitDynamics<GraphicalCoordinationGame> {
        LogitDynamics::new(
            GraphicalCoordinationGame::new(
                GraphBuilder::ring(n),
                CoordinationGame::from_deltas(1.0, 2.0),
            ),
            1.2,
        )
    }

    #[test]
    fn pipelined_default_path_is_bit_identical_across_configs() {
        let d = ring_dynamics(6);
        let sim = Simulator::new(42, 24);
        let obs = StrategyFraction::new(1, "adopters");
        let sequential = sim.run_profiles(&d, &[0; 6], 205, 50, &obs);
        // Chunking, capacity and worker count are unobservable in the result.
        for (workers, config) in [
            (0, PipelineConfig::default()),
            (
                1,
                PipelineConfig {
                    chunk_ticks: 1,
                    channel_capacity: 1,
                    ..PipelineConfig::default()
                },
            ),
            (
                3,
                PipelineConfig {
                    chunk_ticks: 7,
                    channel_capacity: 2,
                    ..PipelineConfig::default()
                },
            ),
            (
                0,
                PipelineConfig {
                    chunk_ticks: 1_000_000,
                    channel_capacity: 64,
                    ..PipelineConfig::default()
                },
            ),
        ] {
            let sim = simulator_with_workers(42, 24, workers);
            let pipelined = sim.run_profiles_pipelined_with(&d, &[0; 6], 205, 50, &obs, &config);
            assert_results_identical(&sequential, &pipelined);
        }
    }

    #[test]
    fn pipelined_scheduled_paths_are_bit_identical() {
        let d = ring_dynamics(5);
        let sim = simulator_with_workers(9, 16, 2);
        let obs = StrategyFraction::new(0, "zeros");
        let config = PipelineConfig {
            chunk_ticks: 13,
            channel_capacity: 3,
            ..PipelineConfig::default()
        };
        let seq_sweep = sim.run_profiles_scheduled(&d, &SystematicSweep, &[1; 5], 77, 20, &obs);
        let pipe_sweep = sim.run_profiles_scheduled_pipelined_with(
            &d,
            &[1; 5],
            77,
            20,
            &obs,
            &SystematicSweep,
            &config,
        );
        assert_results_identical(&seq_sweep, &pipe_sweep);

        let seq_block = sim.run_profiles_scheduled(&d, &AllLogit, &[1; 5], 40, 10, &obs);
        let pipe_block = sim.run_profiles_scheduled_pipelined(&d, &AllLogit, &[1; 5], 40, 10, &obs);
        assert_results_identical(&seq_block, &pipe_block);
    }

    #[test]
    fn pipelined_runner_covers_every_rule() {
        let game = GraphicalCoordinationGame::new(
            GraphBuilder::ring(5),
            CoordinationGame::from_deltas(2.0, 1.0),
        );
        let sim = simulator_with_workers(3, 12, 2);
        let obs = PotentialObservable::new(game.clone());
        let config = PipelineConfig {
            chunk_ticks: 11,
            channel_capacity: 2,
            ..PipelineConfig::default()
        };

        let logit = DynamicsEngine::with_rule(game.clone(), crate::rules::Logit, 0.9);
        assert_results_identical(
            &sim.run_profiles(&logit, &[0; 5], 60, 25, &obs),
            &sim.run_profiles_pipelined_with(&logit, &[0; 5], 60, 25, &obs, &config),
        );
        let metro = DynamicsEngine::with_rule(game.clone(), MetropolisLogit, 0.9);
        assert_results_identical(
            &sim.run_profiles(&metro, &[0; 5], 60, 25, &obs),
            &sim.run_profiles_pipelined_with(&metro, &[0; 5], 60, 25, &obs, &config),
        );
        let nbr = DynamicsEngine::with_rule(game, NoisyBestResponse::new(0.2), 0.9);
        assert_results_identical(
            &sim.run_profiles(&nbr, &[0; 5], 60, 25, &obs),
            &sim.run_profiles_pipelined_with(&nbr, &[0; 5], 60, 25, &obs, &config),
        );
    }

    #[test]
    fn pipelined_runner_streams_beyond_flat_index_capacity() {
        // 400 binary players: no flat index exists; the farm streams fine.
        let game = GraphicalCoordinationGame::new(
            GraphBuilder::ring(400),
            CoordinationGame::from_deltas(3.0, 1.0),
        );
        let d = LogitDynamics::new(game, 2.0);
        let sim = Simulator::new(17, 6);
        let obs = StrategyFraction::new(0, "zeros");
        let sequential = sim.run_profiles(&d, &vec![1usize; 400], 8_000, 2_000, &obs);
        let pipelined = sim.run_profiles_pipelined(&d, &vec![1usize; 400], 8_000, 2_000, &obs);
        assert_results_identical(&sequential, &pipelined);
        assert!(pipelined.law().mean() > 0.2);
    }

    #[test]
    fn ordered_reducer_is_arrival_order_invariant() {
        // 3 times x 4 replicas, folded forwards vs in a scrambled order.
        let values = |sample: usize, replica: usize| (sample * 10 + replica) as f64 * 0.3 - 1.0;
        let mut forward = OrderedSeriesReducer::new(3, 4);
        for replica in 0..4 {
            for sample in 0..3 {
                forward.offer(sample, replica, values(sample, replica));
            }
        }
        let mut scrambled = OrderedSeriesReducer::new(3, 4);
        for (sample, replica) in [
            (2, 3),
            (0, 1),
            (1, 2),
            (0, 0),
            (2, 0),
            (1, 0),
            (0, 3),
            (0, 2),
            (2, 1),
            (1, 3),
            (1, 1),
            (2, 2),
        ] {
            scrambled.offer(sample, replica, values(sample, replica));
        }
        assert_eq!(forward.folded(), 12);
        assert_eq!(scrambled.folded(), 12);
        let fwd = forward.finish();
        let scr = scrambled.finish();
        assert_eq!(fwd.final_values(), scr.final_values());
        for (a, b) in fwd.series().iter().zip(scr.series()) {
            assert_eq!(a.count(), b.count());
            assert_eq!(a.mean(), b.mean());
            assert_eq!(a.variance(), b.variance());
        }
    }

    #[test]
    #[should_panic(expected = "incomplete")]
    fn ordered_reducer_rejects_partial_streams() {
        let mut reducer = OrderedSeriesReducer::new(2, 2);
        reducer.offer(0, 0, 1.0);
        let _ = reducer.finish();
    }

    #[test]
    #[should_panic(expected = "duplicate offer")]
    fn ordered_reducer_rejects_duplicate_pending_offers() {
        let mut reducer = OrderedSeriesReducer::new(1, 3);
        reducer.offer(0, 2, 1.0);
        reducer.offer(0, 2, 1.0);
    }

    #[test]
    #[should_panic(expected = "already folded")]
    fn ordered_reducer_rejects_refolding_a_consumed_replica() {
        let mut reducer = OrderedSeriesReducer::new(1, 3);
        reducer.offer(0, 0, 1.0);
        reducer.offer(0, 0, 2.0);
    }

    #[test]
    #[should_panic(expected = "chunk_ticks")]
    fn zero_chunk_config_rejected() {
        let d = ring_dynamics(4);
        let sim = Simulator::new(1, 2);
        let obs = StrategyFraction::new(0, "zeros");
        let config = PipelineConfig {
            chunk_ticks: 0,
            channel_capacity: 1,
            ..PipelineConfig::default()
        };
        let _ = sim.run_profiles_pipelined_with(&d, &[0; 4], 10, 5, &obs, &config);
    }

    #[test]
    #[should_panic(expected = "channel_capacity")]
    fn zero_capacity_config_rejected_loudly() {
        // The silent `.max(1)` clamp is gone: a zero capacity fails the
        // entry-path validation instead of being quietly papered over.
        let d = ring_dynamics(4);
        let sim = Simulator::new(1, 2);
        let obs = StrategyFraction::new(0, "zeros");
        let config = PipelineConfig {
            chunk_ticks: 8,
            channel_capacity: 0,
            ..PipelineConfig::default()
        };
        let _ = sim.run_profiles_pipelined_with(&d, &[0; 4], 10, 5, &obs, &config);
    }

    #[test]
    #[should_panic(expected = "channel capacity must be at least 1")]
    fn the_farm_itself_rejects_a_zero_capacity_channel() {
        let pool = test_pool(1);
        let _ = farm(
            &pool,
            ChannelBackendKind::Sync,
            1,
            1,
            0,
            |job, tx: &FarmSender<usize>| tx.send(job).is_ok(),
            |rx| rx.sum::<usize>(),
        );
    }

    #[test]
    fn snapshot_pool_recycles_buffers_through_the_return_channel() {
        let pool = SnapshotPool::new();
        let mut spare = Vec::new();
        // Empty pool: the first acquisitions allocate fresh buffers.
        let mut a = pool.acquire(&mut spare);
        let mut b = pool.acquire(&mut spare);
        assert_eq!(pool.fresh_count(), 2);
        assert_eq!(pool.reused_count(), 0);
        a.extend_from_slice(&[1, 2, 3]);
        b.extend_from_slice(&[4, 5]);
        // The reducer hands the batch back; the next acquisitions reuse its
        // buffers, cleared.
        pool.recycle(vec![a, b]);
        let c = pool.acquire(&mut spare);
        assert!(c.is_empty(), "recycled buffers come back cleared");
        assert!(c.capacity() >= 2, "capacity survives the round trip");
        let _ = pool.acquire(&mut spare);
        assert_eq!(pool.fresh_count(), 2);
        assert_eq!(pool.reused_count(), 2);
        // Dry again: back to allocating.
        let _ = pool.acquire(&mut spare);
        assert_eq!(pool.fresh_count(), 3);
    }

    #[test]
    fn snapshot_pooling_preserves_bit_identity_at_dense_sampling() {
        // sample_every = 1 maximises snapshot traffic, so the recycled
        // buffers are exercised hard; the results must not notice.
        let d = ring_dynamics(6);
        let sim = simulator_with_workers(77, 12, 2);
        let obs = StrategyFraction::new(1, "adopters");
        let sequential = sim.run_profiles(&d, &[0; 6], 120, 1, &obs);
        for config in [
            PipelineConfig::default(),
            PipelineConfig {
                chunk_ticks: 3,
                channel_capacity: 1,
                ..PipelineConfig::default()
            },
        ] {
            let pipelined = sim.run_profiles_pipelined_with(&d, &[0; 6], 120, 1, &obs, &config);
            assert_results_identical(&sequential, &pipelined);
        }
    }

    #[test]
    fn farm_streams_every_message_and_reduces_on_the_caller() {
        let pool = test_pool(4);
        for backend in ChannelBackendKind::ALL {
            let sum = farm(
                &pool,
                backend,
                100,
                4,
                8,
                |job, tx: &FarmSender<usize>| tx.send(job * job).is_ok(),
                |rx| rx.sum::<usize>(),
            );
            assert_eq!(
                sum,
                (0..100).map(|j| j * j).sum::<usize>(),
                "{backend:?} lost messages"
            );
        }
    }

    #[test]
    fn farm_propagates_the_reducer_panic_after_workers_drain() {
        // A dying reducer must not deadlock blocked senders, and its panic —
        // the root cause — must reach the caller. Pinned per backend: the
        // disconnect story is part of the ChannelBackend contract.
        let pool = test_pool(2);
        for backend in ChannelBackendKind::ALL {
            let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
                farm(
                    &pool,
                    backend,
                    50,
                    2,
                    1,
                    |job, tx: &FarmSender<usize>| tx.send(job).is_ok(),
                    |mut rx| {
                        let first = rx.next();
                        panic!("reducer rejected {first:?}");
                    },
                )
            }));
            let payload = caught.expect_err("the reducer panic must propagate");
            let message = payload
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_default();
            assert!(
                message.contains("reducer rejected"),
                "{backend:?}: expected the reducer's own panic, got {message:?}"
            );
        }
    }

    #[test]
    fn farm_propagates_a_worker_panic_as_the_root_cause() {
        // A dying worker truncates the stream; the reducer's incomplete-fold
        // panic must not mask the worker's payload — on every backend, not
        // just the sync_channel the pin was first recorded against.
        let pool = test_pool(2);
        for backend in ChannelBackendKind::ALL {
            let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
                farm(
                    &pool,
                    backend,
                    4,
                    2,
                    2,
                    |job, _tx: &FarmSender<usize>| {
                        if job == 1 {
                            panic!("worker {job} exploded");
                        }
                        true
                    },
                    |rx| {
                        let drained: Vec<usize> = rx.collect();
                        panic!("stream truncated after {} messages", drained.len());
                    },
                )
            }));
            let payload = caught.expect_err("the worker panic must propagate");
            let message = payload
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_default();
            assert!(
                message.contains("worker 1 exploded"),
                "{backend:?}: expected the worker's panic as root cause, got {message:?}"
            );
        }
    }

    #[test]
    fn farm_reuses_the_pool_across_many_runs_without_thread_churn() {
        // The whole point of the persistent pool: many short farm runs on
        // one pool, registry stable, no respawns — whichever backend each
        // run picks.
        let pool = test_pool(3);
        let registry_size = pool.registry().len();
        for round in 0..50usize {
            let backend = ChannelBackendKind::ALL[round % ChannelBackendKind::ALL.len()];
            let total = farm(
                &pool,
                backend,
                6,
                3,
                4,
                move |job, tx: &FarmSender<usize>| tx.send(job + round).is_ok(),
                |rx| rx.sum::<usize>(),
            );
            assert_eq!(total, (0..6).map(|j| j + round).sum::<usize>());
        }
        assert_eq!(pool.registry().len(), registry_size);
    }

    #[test]
    fn every_channel_backend_is_bit_identical_in_ordered_mode() {
        // The backend is a transport choice, not a semantic one: under the
        // ordered reducer all three must reproduce the sequential bytes.
        let d = ring_dynamics(6);
        let sim = simulator_with_workers(11, 20, 3);
        let obs = StrategyFraction::new(1, "adopters");
        let sequential = sim.run_profiles(&d, &[0; 6], 190, 25, &obs);
        for backend in ChannelBackendKind::ALL {
            let config = PipelineConfig {
                chunk_ticks: 9,
                channel_capacity: 3,
                backend,
                ..PipelineConfig::default()
            };
            let pipelined = sim.run_profiles_pipelined_with(&d, &[0; 6], 190, 25, &obs, &config);
            assert_results_identical(&sequential, &pipelined);
        }
    }

    #[test]
    fn the_unordered_reducer_matches_ordered_up_to_fold_order() {
        // Merge-on-arrival gives up the byte-level pin on the Welford
        // moments only: counts, min/max, finals and the empirical law must
        // stay exactly equal on every backend.
        let d = ring_dynamics(6);
        let sim = simulator_with_workers(23, 18, 3);
        let obs = StrategyFraction::new(1, "adopters");
        let ordered = sim.run_profiles(&d, &[0; 6], 160, 20, &obs);
        for backend in ChannelBackendKind::ALL {
            let config = PipelineConfig {
                chunk_ticks: 5,
                channel_capacity: 2,
                backend,
                reducer: ReducerMode::Unordered,
                ..PipelineConfig::default()
            };
            let unordered = sim.run_profiles_pipelined_with(&d, &[0; 6], 160, 20, &obs, &config);
            assert_eq!(ordered.final_values, unordered.final_values, "{backend:?}");
            assert_eq!(
                ordered.law().ks_distance(&unordered.law()),
                0.0,
                "{backend:?}: the final-time empirical laws must coincide"
            );
            for (a, b) in ordered.series.iter().zip(&unordered.series) {
                assert_eq!(a.count(), b.count(), "{backend:?}");
                assert_eq!(a.min(), b.min(), "{backend:?}");
                assert_eq!(a.max(), b.max(), "{backend:?}");
                assert!(
                    (a.mean() - b.mean()).abs() <= 1e-12,
                    "{backend:?}: means drifted beyond fp rounding"
                );
                assert!(
                    (a.variance() - b.variance()).abs() <= 1e-12,
                    "{backend:?}: variances drifted beyond fp rounding"
                );
            }
        }
    }

    #[test]
    fn adaptive_backpressure_keeps_the_bit_identity_pin() {
        // The controller only moves chunk boundaries and in-flight depth —
        // both proven result-invariant — so adaptive mode must still match
        // the sequential bytes, on every backend.
        let d = ring_dynamics(6);
        let sim = simulator_with_workers(5, 14, 2);
        let obs = StrategyFraction::new(1, "adopters");
        let sequential = sim.run_profiles(&d, &[0; 6], 150, 10, &obs);
        for backend in ChannelBackendKind::ALL {
            let config = PipelineConfig {
                chunk_ticks: 2,
                channel_capacity: 2,
                backend,
                adaptive: true,
                ..PipelineConfig::default()
            };
            let pipelined = sim.run_profiles_pipelined_with(&d, &[0; 6], 150, 10, &obs, &config);
            assert_results_identical(&sequential, &pipelined);
        }
    }

    #[test]
    fn try_validate_reports_typed_errors_and_validate_still_panics() {
        let good = PipelineConfig::default();
        assert_eq!(good.try_validate(), Ok(()));
        let zero_chunk = PipelineConfig {
            chunk_ticks: 0,
            ..PipelineConfig::default()
        };
        assert_eq!(
            zero_chunk.try_validate(),
            Err(PipelineConfigError::ZeroChunkTicks)
        );
        let zero_capacity = PipelineConfig {
            channel_capacity: 0,
            ..PipelineConfig::default()
        };
        assert_eq!(
            zero_capacity.try_validate(),
            Err(PipelineConfigError::ZeroChannelCapacity)
        );
        // The typed errors render the exact strings the entry-path panics
        // (and their should_panic pins) rely on.
        assert_eq!(
            PipelineConfigError::ZeroChunkTicks.to_string(),
            "chunk_ticks must be at least 1"
        );
        assert_eq!(
            PipelineConfigError::ZeroChannelCapacity.to_string(),
            "channel_capacity must be at least 1"
        );
    }

    #[test]
    fn a_pre_cancelled_run_returns_none_without_stepping() {
        let d = ring_dynamics(6);
        let sim = simulator_with_workers(42, 16, 2);
        let obs = StrategyFraction::new(1, "adopters");
        let cancel = CancelToken::new();
        cancel.cancel();
        let result = sim.run_profiles_pipelined_cancellable_with(
            &d,
            &[0; 6],
            1_000,
            100,
            &obs,
            &PipelineConfig::default(),
            &cancel,
        );
        assert!(
            result.is_none(),
            "a cancelled run must not produce a result"
        );
    }

    #[test]
    fn mid_run_cancellation_ends_the_farm_cleanly() {
        // Tiny chunks so workers hit the cancellation check often; the
        // token is tripped by the reducer side-channel after the first
        // batch lands, which is guaranteed to be mid-run because replicas
        // far outnumber workers.
        let d = ring_dynamics(6);
        let sim = simulator_with_workers(7, 64, 2);
        let cancel = CancelToken::new();
        let trip = cancel.clone();
        let obs = crate::observables::NamedObservable::new("tripwire", move |p: &[usize]| {
            trip.cancel();
            p[0] as f64
        });
        let config = PipelineConfig {
            chunk_ticks: 2,
            channel_capacity: 2,
            ..PipelineConfig::default()
        };
        let result = sim
            .run_profiles_pipelined_cancellable_with(&d, &[0; 6], 400, 10, &obs, &config, &cancel);
        assert!(result.is_none());
        // The pool survives the cancelled farm: the next run is normal and
        // bit-identical to the sequential path.
        let obs = StrategyFraction::new(1, "adopters");
        let sequential = sim.run_profiles(&d, &[0; 6], 120, 30, &obs);
        let fresh = CancelToken::new();
        let rerun = sim
            .run_profiles_pipelined_cancellable_with(&d, &[0; 6], 120, 30, &obs, &config, &fresh)
            .expect("uncancelled rerun completes");
        assert_results_identical(&sequential, &rerun);
    }

    #[test]
    fn an_uncancelled_token_changes_nothing() {
        let d = ring_dynamics(6);
        let sim = simulator_with_workers(13, 20, 3);
        let obs = StrategyFraction::new(1, "adopters");
        let sequential = sim.run_profiles(&d, &[0; 6], 205, 50, &obs);
        let cancel = CancelToken::new();
        let cancellable = sim
            .run_profiles_pipelined_cancellable_with(
                &d,
                &[0; 6],
                205,
                50,
                &obs,
                &PipelineConfig::default(),
                &cancel,
            )
            .expect("run completes");
        assert_results_identical(&sequential, &cancellable);
        // The scheduled entry honours the token the same way.
        let seq_sweep = sim.run_profiles_scheduled(&d, &SystematicSweep, &[1; 6], 77, 20, &obs);
        let pipe_sweep = sim
            .run_profiles_scheduled_pipelined_cancellable_with(
                &d,
                &[1; 6],
                77,
                20,
                &obs,
                &SystematicSweep,
                &PipelineConfig::default(),
                &cancel,
            )
            .expect("run completes");
        assert_results_identical(&seq_sweep, &pipe_sweep);
    }

    #[test]
    fn reseeded_simulators_share_one_pool_and_replay_bit_identically() {
        let d = ring_dynamics(6);
        let base = simulator_with_workers(1, 4, 2);
        let shared_registry = base.pool().registry().entries();
        let job = base.reseeded(99, 12);
        // Same threads, no respawn: the registry is the pool's identity.
        assert_eq!(job.pool().registry().entries(), shared_registry);
        let obs = StrategyFraction::new(1, "adopters");
        let served = job.run_profiles_pipelined(&d, &[0; 6], 150, 30, &obs);
        // The offline replay contract: a fresh Simulator with the job's
        // seed and replica count reproduces the served bytes.
        let offline = Simulator::new(99, 12).run_profiles(&d, &[0; 6], 150, 30, &obs);
        assert_results_identical(&offline, &served);
    }

    #[test]
    fn pipelined_tempered_runs_match_their_sequential_contract() {
        // `run_tempered` is routed through the same farm/reducer stages; its
        // existing tests pin reproducibility, this one pins the stage plumbing
        // on a multi-rung ladder end to end.
        use crate::schedules::UniformSingle;
        use crate::tempering::TemperingEnsemble;
        let game = WellGame::plateau(4, 2.0);
        let ensemble = TemperingEnsemble::new(game.clone(), crate::rules::Logit, &[0.4, 1.2, 2.4]);
        let sim = Simulator::new(31, 10);
        let obs = PotentialObservable::new(game);
        let a = sim.run_tempered(&ensemble, &UniformSingle, &[0; 4], 12, 4, 5, &obs);
        let b = sim.run_tempered(&ensemble, &UniformSingle, &[0; 4], 12, 4, 5, &obs);
        assert_eq!(a.final_values, b.final_values);
        assert_eq!(a.swap_stats, b.swap_stats);
        assert_eq!(a.times, vec![20, 40, 48]);
        assert!(a.series.iter().all(|s| s.count() == 10));
        // Explicit pipeline knobs — and a different worker count — cannot
        // change the tempered result either.
        let tight = PipelineConfig {
            chunk_ticks: 1,
            channel_capacity: 1,
            ..PipelineConfig::default()
        };
        let sim = simulator_with_workers(31, 10, 1);
        let c = sim.run_tempered_with(&ensemble, &UniformSingle, &[0; 4], 12, 4, 5, &obs, &tight);
        assert_eq!(a.final_values, c.final_values);
        assert_eq!(a.swap_stats, c.swap_stats);
        for (sa, sc) in a.series.iter().zip(&c.series) {
            assert_eq!(sa.count(), sc.count());
            assert_eq!(sa.mean(), sc.mean());
            assert_eq!(sa.variance(), sc.variance());
        }
    }
}
