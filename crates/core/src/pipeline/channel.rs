//! Pluggable channel backends for the farm's stage boundary.
//!
//! The farm pipeline used to hard-code `std::sync::mpsc::sync_channel`
//! between the step workers and the reducer. This module abstracts that
//! boundary behind the [`ChannelBackend`] trait — a bounded channel with
//! blocking and non-blocking send/receive and an explicit disconnect story
//! in both directions — and provides three implementations, the same shape
//! the PPL libraries race against each other:
//!
//! * [`SyncChannelBackend`] — the existing `sync_channel`, the default.
//!   Mutex/condvar based; every committed bit-identity gate was recorded
//!   through it.
//! * [`SpscBackend`] — a FastFlow-style lock-free bounded **SPSC** ring per
//!   producer lane. Each pool worker owns exactly one lane (keyed by its
//!   spawn index, a per-thread constant), so every ring has one producer
//!   and the single reducer polls the rings round-robin. No locks, no
//!   syscalls on the hot path; blocking ops escalate spin → yield →
//!   bounded naps, so a blocked or idle farm never taxes the host.
//! * [`MpmcBackend`] — a bounded lock-free **MPMC** array queue (Vyukov
//!   sequence-counter design, the crossbeam/kanal shape): one shared slot
//!   array, CAS-claimed positions, any number of producers and consumers.
//!   The many-worker case where per-lane rings would multiply memory.
//!
//! Backends are selected at runtime through [`ChannelBackendKind`] (the
//! [`PipelineConfig::backend`](super::PipelineConfig) knob, overridable via
//! the `LOGIT_CHANNEL_BACKEND` environment variable), and the farm drives
//! them through the [`AnyChannelSender`]/[`AnyChannelReceiver`] enums so
//! worker and reducer closures stay non-generic. The dispatch cost is one
//! branch per *batch*, noise against the `O(chunk_ticks · n)` of stepping
//! a batch.
//!
//! **Disconnect story.** Dropping the receiver closes the channel: every
//! subsequent or blocked `send` returns the message to the caller
//! ([`TrySendError::Disconnected`] / `Err` from the blocking send).
//! Dropping the last sender lets `recv` drain what remains and then return
//! `None`. The farm itself never relies on the latter (its termination is
//! JobDone-counted), but the contract is pinned by tests so backends stay
//! interchangeable.

use crate::runtime::{self, WaitPolicy};
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Which [`ChannelBackend`] carries worker→reducer messages. Selection is
/// a runtime knob ([`PipelineConfig::backend`](super::PipelineConfig)); the
/// backends themselves are monomorphised, and all of them preserve the
/// bit-identity contract in ordered-reducer mode (asserted by the proptest
/// harness under every kind).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChannelBackendKind {
    /// `std::sync::mpsc::sync_channel` — the default and the baseline
    /// every committed throughput ratio was recorded against.
    Sync,
    /// Lock-free bounded SPSC ring per pool-worker lane, reducer polls.
    Spsc,
    /// Lock-free bounded MPMC array queue (sequence-counter design).
    Mpmc,
}

impl Default for ChannelBackendKind {
    /// The process-wide default: `LOGIT_CHANNEL_BACKEND` when set and
    /// parseable (read once, cached), [`Sync`](ChannelBackendKind::Sync)
    /// otherwise — so a CI matrix can re-run every pipeline test under
    /// each backend without touching call sites.
    fn default() -> Self {
        Self::from_env()
    }
}

impl ChannelBackendKind {
    /// All kinds, for exhaustive test sweeps and bench row-sets.
    pub const ALL: [ChannelBackendKind; 3] = [
        ChannelBackendKind::Sync,
        ChannelBackendKind::Spsc,
        ChannelBackendKind::Mpmc,
    ];

    /// Stable lower-case name (used in bench JSON and env parsing).
    pub fn name(self) -> &'static str {
        match self {
            ChannelBackendKind::Sync => "sync",
            ChannelBackendKind::Spsc => "spsc",
            ChannelBackendKind::Mpmc => "mpmc",
        }
    }

    /// Parses the lower-case name emitted by [`name`](Self::name)
    /// (`sync_channel` is accepted as an alias for `sync`).
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "sync" | "sync_channel" => Some(ChannelBackendKind::Sync),
            "spsc" => Some(ChannelBackendKind::Spsc),
            "mpmc" => Some(ChannelBackendKind::Mpmc),
            _ => None,
        }
    }

    /// Reads `LOGIT_CHANNEL_BACKEND` once (cached for the process),
    /// falling back to [`Sync`](ChannelBackendKind::Sync) — with the same
    /// one-time stderr warning as the `LOGIT_*` runtime knobs — when the
    /// value does not parse.
    pub fn from_env() -> Self {
        static KIND: OnceLock<ChannelBackendKind> = OnceLock::new();
        *KIND.get_or_init(|| match std::env::var("LOGIT_CHANNEL_BACKEND") {
            Err(_) => ChannelBackendKind::Sync,
            Ok(value) => match ChannelBackendKind::parse(&value) {
                Some(kind) => kind,
                None => {
                    runtime::warn_invalid_env("LOGIT_CHANNEL_BACKEND", &value);
                    ChannelBackendKind::Sync
                }
            },
        })
    }

    /// The number of in-flight messages a channel opened with
    /// (`capacity`, `lanes`) can actually hold — the honest version of the
    /// `capacity` knob at the [`ChannelBackend::open`] seam.
    ///
    /// The single-queue backends hold exactly `capacity`. The SPSC backend
    /// splits the total across its per-producer lanes with floor division
    /// and a ≥ 1 slot-per-lane clamp (a zero-slot ring would deadlock its
    /// producer), so its effective total is
    /// `(capacity / lanes).max(1) * lanes`: **never more** than `capacity`
    /// when `capacity >= lanes`, and exactly `lanes` in the degenerate
    /// `capacity < lanes` regime — the only case where the requested bound
    /// is exceeded, and the caller can read that exceedance off this
    /// function instead of discovering it in a memory profile.
    pub fn effective_capacity(self, capacity: usize, lanes: usize) -> usize {
        assert!(capacity >= 1, "channel capacity must be at least 1");
        let lanes = lanes.max(1);
        match self {
            ChannelBackendKind::Sync | ChannelBackendKind::Mpmc => capacity,
            ChannelBackendKind::Spsc => (capacity / lanes).max(1) * lanes,
        }
    }

    /// Opens a channel of this kind behind the type-erasing enums the farm
    /// drives. See [`ChannelBackend::open`] for the parameter contract.
    pub(crate) fn open<M: Send>(
        self,
        capacity: usize,
        lanes: usize,
        policy: WaitPolicy,
    ) -> (AnyChannelSender<M>, AnyChannelReceiver<M>) {
        match self {
            ChannelBackendKind::Sync => {
                let (tx, rx) = SyncChannelBackend::open(capacity, lanes, policy);
                (AnyChannelSender::Sync(tx), AnyChannelReceiver::Sync(rx))
            }
            ChannelBackendKind::Spsc => {
                let (tx, rx) = SpscBackend::open(capacity, lanes, policy);
                (AnyChannelSender::Spsc(tx), AnyChannelReceiver::Spsc(rx))
            }
            ChannelBackendKind::Mpmc => {
                let (tx, rx) = MpmcBackend::open(capacity, lanes, policy);
                (AnyChannelSender::Mpmc(tx), AnyChannelReceiver::Mpmc(rx))
            }
        }
    }
}

/// Error of a non-blocking bounded send: the channel was full, or the
/// receiver hung up. The message comes back either way.
#[derive(Debug)]
pub enum TrySendError<M> {
    /// Every slot is occupied; retry later (or block via `send`).
    Full(M),
    /// The receiver was dropped; no send can ever succeed again.
    Disconnected(M),
}

/// The producer half of a [`ChannelBackend`]: bounded blocking and
/// non-blocking sends. `lane` identifies the producer for backends with
/// per-producer state (the SPSC rings); single-queue backends ignore it.
/// A given lane must never be used by two threads concurrently.
pub trait ChannelSender<M: Send>: Send + Sync + Clone {
    /// Blocking bounded send: waits while the channel is full (this is the
    /// farm's backpressure), escalating spin → yield → bounded naps so a
    /// blocked producer never taxes the host. `Err(message)` means the
    /// receiver hung up.
    fn send(&self, lane: usize, message: M) -> Result<(), M>;

    /// Non-blocking send.
    fn try_send(&self, lane: usize, message: M) -> Result<(), TrySendError<M>>;
}

/// The consumer half of a [`ChannelBackend`].
pub trait ChannelReceiver<M: Send>: Send {
    /// Blocking receive: waits for a message (spin → yield → bounded
    /// naps), returning `None` only once every sender has been dropped
    /// and the channel is drained.
    fn recv(&mut self) -> Option<M>;

    /// Non-blocking receive: `None` when nothing is immediately
    /// available.
    fn try_recv(&mut self) -> Option<M>;
}

/// A bounded channel implementation for the farm's stage boundary.
pub trait ChannelBackend<M: Send> {
    /// The producer half.
    type Sender: ChannelSender<M>;
    /// The consumer half.
    type Receiver: ChannelReceiver<M>;

    /// Opens a channel holding at most `capacity` in-flight messages in
    /// total across `lanes` producer lanes. Per-lane backends split the
    /// capacity with floor division, keeping at least one slot per lane —
    /// so the total bound is honoured whenever `capacity >= lanes` and is
    /// `lanes` otherwise; the exact figure is
    /// [`ChannelBackendKind::effective_capacity`]. `policy` seeds the
    /// idle-wait escalation of the blocking operations with the same
    /// hot-window philosophy as the pool's [`WaitPolicy`].
    fn open(capacity: usize, lanes: usize, policy: WaitPolicy) -> (Self::Sender, Self::Receiver);
}

/// Escalating idle wait for the lock-free backends' blocking operations:
/// a short hot window (sized by the pool's [`WaitPolicy`]), then yields,
/// then bounded `sleep` naps — so a producer blocked on backpressure or a
/// reducer waiting for the next batch costs the host nothing sustained,
/// and a receiver hang-up is observed within one nap.
struct Backoff {
    policy: WaitPolicy,
    polls: u32,
}

/// The nap length once a blocking channel op has exhausted its hot
/// window. Long enough to cost ~zero CPU, short enough that wake latency
/// is noise against a `chunk_ticks`-sized batch.
const CHANNEL_NAP: Duration = Duration::from_micros(100);

impl Backoff {
    fn new(policy: WaitPolicy) -> Self {
        Backoff { policy, polls: 0 }
    }

    /// One escalation step.
    fn wait(&mut self) {
        let (spins, yields) = match self.policy {
            WaitPolicy::Spin => (1u32 << 8, 1u32 << 7),
            WaitPolicy::Yield => (1u32 << 4, 1u32 << 7),
            WaitPolicy::Park => (0, 1u32 << 3),
        };
        if self.polls < spins {
            std::hint::spin_loop();
            self.polls += 1;
        } else if self.polls < spins + yields {
            std::thread::yield_now();
            self.polls += 1;
        } else {
            std::thread::sleep(CHANNEL_NAP);
        }
    }
}

/// Pads an atomic onto its own cache line so producer and consumer
/// cursors never false-share.
#[repr(align(64))]
struct Pad<T>(T);

// ---------------------------------------------------------------------------
// sync_channel backend
// ---------------------------------------------------------------------------

/// The default backend: `std::sync::mpsc::sync_channel`. Blocking,
/// mutex/condvar based, disconnect handled by std.
pub struct SyncChannelBackend;

/// [`SyncChannelBackend`]'s producer half.
pub struct SyncChannelSender<M> {
    tx: SyncSender<M>,
}

impl<M> Clone for SyncChannelSender<M> {
    fn clone(&self) -> Self {
        SyncChannelSender {
            tx: self.tx.clone(),
        }
    }
}

/// [`SyncChannelBackend`]'s consumer half.
pub struct SyncChannelReceiver<M> {
    rx: Receiver<M>,
}

impl<M: Send> ChannelBackend<M> for SyncChannelBackend {
    type Sender = SyncChannelSender<M>;
    type Receiver = SyncChannelReceiver<M>;

    fn open(capacity: usize, _lanes: usize, _policy: WaitPolicy) -> (Self::Sender, Self::Receiver) {
        assert!(capacity >= 1, "channel capacity must be at least 1");
        let (tx, rx) = sync_channel(capacity);
        (SyncChannelSender { tx }, SyncChannelReceiver { rx })
    }
}

impl<M: Send> ChannelSender<M> for SyncChannelSender<M> {
    fn send(&self, _lane: usize, message: M) -> Result<(), M> {
        self.tx.send(message).map_err(|e| e.0)
    }

    fn try_send(&self, _lane: usize, message: M) -> Result<(), TrySendError<M>> {
        self.tx.try_send(message).map_err(|e| match e {
            std::sync::mpsc::TrySendError::Full(m) => TrySendError::Full(m),
            std::sync::mpsc::TrySendError::Disconnected(m) => TrySendError::Disconnected(m),
        })
    }
}

impl<M: Send> ChannelReceiver<M> for SyncChannelReceiver<M> {
    fn recv(&mut self) -> Option<M> {
        self.rx.recv().ok()
    }

    fn try_recv(&mut self) -> Option<M> {
        self.rx.try_recv().ok()
    }
}

// ---------------------------------------------------------------------------
// SPSC backend: one lock-free bounded ring per producer lane
// ---------------------------------------------------------------------------

/// One single-producer/single-consumer bounded ring: monotonic head/tail
/// cursors over a fixed slot array, no CAS anywhere — the producer owns
/// `tail`, the consumer owns `head`, each reads the other's cursor with
/// Acquire to pair with the Release publish.
struct SpscRing<M> {
    head: Pad<AtomicUsize>,
    tail: Pad<AtomicUsize>,
    slots: Box<[UnsafeCell<MaybeUninit<M>>]>,
}

// SAFETY: the ring moves `M` values across threads (one producer, one
// consumer); slot access is serialised by the head/tail protocol.
unsafe impl<M: Send> Send for SpscRing<M> {}
unsafe impl<M: Send> Sync for SpscRing<M> {}

impl<M> SpscRing<M> {
    fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "ring capacity must be at least 1");
        SpscRing {
            head: Pad(AtomicUsize::new(0)),
            tail: Pad(AtomicUsize::new(0)),
            slots: (0..capacity)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect(),
        }
    }

    /// Producer side. Exactly one thread may push into a given ring at a
    /// time (the lane contract).
    fn try_push(&self, message: M) -> Result<(), M> {
        let tail = self.tail.0.load(Ordering::Relaxed);
        let head = self.head.0.load(Ordering::Acquire);
        if tail.wrapping_sub(head) == self.slots.len() {
            return Err(message);
        }
        // SAFETY: the slot at `tail` is unoccupied (tail - head < len) and
        // no other producer exists on this ring; the Release store below
        // publishes the write to the consumer.
        unsafe { (*self.slots[tail % self.slots.len()].get()).write(message) };
        self.tail.0.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Consumer side (single consumer).
    fn try_pop(&self) -> Option<M> {
        let head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        // SAFETY: head < tail, so the slot holds an initialised message
        // published by the producer's Release store; the Release below
        // returns the slot to the producer.
        let message = unsafe { (*self.slots[head % self.slots.len()].get()).assume_init_read() };
        self.head.0.store(head.wrapping_add(1), Ordering::Release);
        Some(message)
    }
}

impl<M> Drop for SpscRing<M> {
    fn drop(&mut self) {
        while self.try_pop().is_some() {}
    }
}

struct SpscShared<M> {
    rings: Box<[SpscRing<M>]>,
    /// Receiver dropped: sends fail from here on.
    closed: AtomicBool,
    /// Live sender clones; 0 lets `recv` report the stream's end.
    senders: AtomicUsize,
    policy: WaitPolicy,
}

/// [`SpscBackend`]'s producer half. Clones share the lane array; the lane
/// passed to `send` picks the ring, and each lane must stay
/// single-threaded at any instant (in the farm: lane = pool-worker index,
/// a per-thread constant).
pub struct SpscSender<M: Send> {
    shared: Arc<SpscShared<M>>,
}

/// [`SpscBackend`]'s consumer half: polls the lanes round-robin.
pub struct SpscReceiver<M: Send> {
    shared: Arc<SpscShared<M>>,
    cursor: usize,
}

/// Lock-free bounded SPSC rings, one per producer lane. See the
/// [module docs](self) for where this wins.
pub struct SpscBackend;

impl<M: Send> ChannelBackend<M> for SpscBackend {
    type Sender = SpscSender<M>;
    type Receiver = SpscReceiver<M>;

    fn open(capacity: usize, lanes: usize, policy: WaitPolicy) -> (Self::Sender, Self::Receiver) {
        assert!(capacity >= 1, "channel capacity must be at least 1");
        let lanes = lanes.max(1);
        // Split the configured total capacity across the lanes with FLOOR
        // division so the farm's peak-memory bound is honest: the lane
        // total `(capacity / lanes).max(1) * lanes` never exceeds the
        // requested capacity once `capacity >= lanes`. The old `div_ceil`
        // split silently granted up to `lanes - 1` extra slots. Below
        // `capacity < lanes` the ≥ 1 slot-per-lane clamp still wins — a
        // zero-slot ring would deadlock its producer — and the documented
        // effective capacity is `lanes`; see
        // [`ChannelBackendKind::effective_capacity`].
        let per_lane = (capacity / lanes).max(1);
        let shared = Arc::new(SpscShared {
            rings: (0..lanes).map(|_| SpscRing::new(per_lane)).collect(),
            closed: AtomicBool::new(false),
            senders: AtomicUsize::new(1),
            policy,
        });
        (
            SpscSender {
                shared: Arc::clone(&shared),
            },
            SpscReceiver { shared, cursor: 0 },
        )
    }
}

impl<M: Send> Clone for SpscSender<M> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::Relaxed);
        SpscSender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<M: Send> Drop for SpscSender<M> {
    fn drop(&mut self) {
        // Release pairs with the receiver's Acquire: messages pushed
        // before the drop are visible once the count is observed.
        self.shared.senders.fetch_sub(1, Ordering::Release);
    }
}

impl<M: Send> Drop for SpscReceiver<M> {
    fn drop(&mut self) {
        self.shared.closed.store(true, Ordering::Release);
    }
}

impl<M: Send> ChannelSender<M> for SpscSender<M> {
    fn send(&self, lane: usize, message: M) -> Result<(), M> {
        let mut backoff = Backoff::new(self.shared.policy);
        let mut message = message;
        loop {
            if self.shared.closed.load(Ordering::Acquire) {
                return Err(message);
            }
            match self.shared.rings[lane].try_push(message) {
                Ok(()) => return Ok(()),
                Err(back) => {
                    message = back;
                    backoff.wait();
                }
            }
        }
    }

    fn try_send(&self, lane: usize, message: M) -> Result<(), TrySendError<M>> {
        if self.shared.closed.load(Ordering::Acquire) {
            return Err(TrySendError::Disconnected(message));
        }
        self.shared.rings[lane]
            .try_push(message)
            .map_err(TrySendError::Full)
    }
}

impl<M: Send> ChannelReceiver<M> for SpscReceiver<M> {
    fn recv(&mut self) -> Option<M> {
        let mut backoff = Backoff::new(self.shared.policy);
        loop {
            if let Some(message) = self.try_recv() {
                return Some(message);
            }
            if self.shared.senders.load(Ordering::Acquire) == 0 {
                // The count going to zero happens-after every sender's
                // last push; one more sweep settles the race between a
                // final push and the drop.
                return self.try_recv();
            }
            backoff.wait();
        }
    }

    fn try_recv(&mut self) -> Option<M> {
        let lanes = self.shared.rings.len();
        for step in 0..lanes {
            let lane = (self.cursor + step) % lanes;
            if let Some(message) = self.shared.rings[lane].try_pop() {
                // Resume at the next lane so one busy producer cannot
                // starve the others.
                self.cursor = (lane + 1) % lanes;
                return Some(message);
            }
        }
        None
    }
}

// ---------------------------------------------------------------------------
// MPMC backend: bounded lock-free array queue (sequence counters)
// ---------------------------------------------------------------------------

struct MpmcSlot<M> {
    /// The slot's sequence stamp: `2·pos` when free for the enqueuer of
    /// position `pos`, `2·pos + 1` while holding that enqueue's message,
    /// `2·(pos + capacity)` once dequeued (free for the next lap). The
    /// factor 2 keeps occupied stamps odd and free stamps even, so
    /// "enqueued a lap ago" can never alias "free now" — the classic
    /// sequence-counter scheme breaks down there at capacity 1.
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<M>>,
}

struct MpmcShared<M> {
    enqueue: Pad<AtomicUsize>,
    dequeue: Pad<AtomicUsize>,
    slots: Box<[MpmcSlot<M>]>,
    closed: AtomicBool,
    senders: AtomicUsize,
    policy: WaitPolicy,
}

// SAFETY: slot access is serialised by the sequence-counter protocol; `M`
// values move across threads.
unsafe impl<M: Send> Send for MpmcShared<M> {}
unsafe impl<M: Send> Sync for MpmcShared<M> {}

impl<M> MpmcShared<M> {
    fn new(capacity: usize, policy: WaitPolicy) -> Self {
        assert!(capacity >= 1, "channel capacity must be at least 1");
        MpmcShared {
            enqueue: Pad(AtomicUsize::new(0)),
            dequeue: Pad(AtomicUsize::new(0)),
            slots: (0..capacity)
                .map(|i| MpmcSlot {
                    seq: AtomicUsize::new(2 * i),
                    value: UnsafeCell::new(MaybeUninit::uninit()),
                })
                .collect(),
            closed: AtomicBool::new(false),
            senders: AtomicUsize::new(1),
            policy,
        }
    }

    fn try_push(&self, message: M) -> Result<(), M> {
        let capacity = self.slots.len();
        let mut pos = self.enqueue.0.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos % capacity];
            let seq = slot.seq.load(Ordering::Acquire);
            let dif = seq.wrapping_sub(pos.wrapping_mul(2)) as isize;
            if dif == 0 {
                match self.enqueue.0.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS claimed position `pos`
                        // exclusively and its slot is free (seq == 2·pos);
                        // the Release below hands it to dequeuers.
                        unsafe { (*slot.value.get()).write(message) };
                        slot.seq
                            .store(pos.wrapping_mul(2).wrapping_add(1), Ordering::Release);
                        return Ok(());
                    }
                    Err(current) => pos = current,
                }
            } else if dif < 0 {
                // The slot still holds a message a full lap behind: full.
                return Err(message);
            } else {
                // Another producer claimed `pos`; chase the counter.
                pos = self.enqueue.0.load(Ordering::Relaxed);
            }
        }
    }

    fn try_pop(&self) -> Option<M> {
        let capacity = self.slots.len();
        let mut pos = self.dequeue.0.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos % capacity];
            let seq = slot.seq.load(Ordering::Acquire);
            let dif = seq.wrapping_sub(pos.wrapping_mul(2).wrapping_add(1)) as isize;
            if dif == 0 {
                match self.dequeue.0.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS claimed position `pos`
                        // exclusively and its slot holds an initialised
                        // message (seq == 2·pos + 1); the Release below
                        // frees it for the next lap's enqueuer.
                        let message = unsafe { (*slot.value.get()).assume_init_read() };
                        slot.seq.store(
                            pos.wrapping_add(capacity).wrapping_mul(2),
                            Ordering::Release,
                        );
                        return Some(message);
                    }
                    Err(current) => pos = current,
                }
            } else if dif < 0 {
                return None;
            } else {
                pos = self.dequeue.0.load(Ordering::Relaxed);
            }
        }
    }
}

impl<M> Drop for MpmcShared<M> {
    fn drop(&mut self) {
        while self.try_pop().is_some() {}
    }
}

/// [`MpmcBackend`]'s producer half; clone freely across threads.
pub struct MpmcSender<M: Send> {
    shared: Arc<MpmcShared<M>>,
}

/// [`MpmcBackend`]'s consumer half.
pub struct MpmcReceiver<M: Send> {
    shared: Arc<MpmcShared<M>>,
}

/// Bounded lock-free MPMC array queue. See the [module docs](self).
pub struct MpmcBackend;

impl<M: Send> ChannelBackend<M> for MpmcBackend {
    type Sender = MpmcSender<M>;
    type Receiver = MpmcReceiver<M>;

    fn open(capacity: usize, _lanes: usize, policy: WaitPolicy) -> (Self::Sender, Self::Receiver) {
        let shared = Arc::new(MpmcShared::new(capacity, policy));
        (
            MpmcSender {
                shared: Arc::clone(&shared),
            },
            MpmcReceiver { shared },
        )
    }
}

impl<M: Send> Clone for MpmcSender<M> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::Relaxed);
        MpmcSender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<M: Send> Drop for MpmcSender<M> {
    fn drop(&mut self) {
        self.shared.senders.fetch_sub(1, Ordering::Release);
    }
}

impl<M: Send> Drop for MpmcReceiver<M> {
    fn drop(&mut self) {
        self.shared.closed.store(true, Ordering::Release);
    }
}

impl<M: Send> ChannelSender<M> for MpmcSender<M> {
    fn send(&self, _lane: usize, message: M) -> Result<(), M> {
        let mut backoff = Backoff::new(self.shared.policy);
        let mut message = message;
        loop {
            if self.shared.closed.load(Ordering::Acquire) {
                return Err(message);
            }
            match self.shared.try_push(message) {
                Ok(()) => return Ok(()),
                Err(back) => {
                    message = back;
                    backoff.wait();
                }
            }
        }
    }

    fn try_send(&self, _lane: usize, message: M) -> Result<(), TrySendError<M>> {
        if self.shared.closed.load(Ordering::Acquire) {
            return Err(TrySendError::Disconnected(message));
        }
        self.shared.try_push(message).map_err(TrySendError::Full)
    }
}

impl<M: Send> ChannelReceiver<M> for MpmcReceiver<M> {
    fn recv(&mut self) -> Option<M> {
        let mut backoff = Backoff::new(self.shared.policy);
        loop {
            if let Some(message) = self.shared.try_pop() {
                return Some(message);
            }
            if self.shared.senders.load(Ordering::Acquire) == 0 {
                return self.shared.try_pop();
            }
            backoff.wait();
        }
    }

    fn try_recv(&mut self) -> Option<M> {
        self.shared.try_pop()
    }
}

// ---------------------------------------------------------------------------
// Type-erasing enums: runtime backend selection without generic closures
// ---------------------------------------------------------------------------

/// A sender of any backend kind; the farm's worker closures hold this so
/// they stay non-generic over the backend.
pub(crate) enum AnyChannelSender<M: Send> {
    Sync(SyncChannelSender<M>),
    Spsc(SpscSender<M>),
    Mpmc(MpmcSender<M>),
}

impl<M: Send> AnyChannelSender<M> {
    /// Whether sends must carry the pool-worker lane (per-lane backend).
    pub(crate) fn is_per_lane(&self) -> bool {
        matches!(self, AnyChannelSender::Spsc(_))
    }
}

impl<M: Send> Clone for AnyChannelSender<M> {
    fn clone(&self) -> Self {
        match self {
            AnyChannelSender::Sync(tx) => AnyChannelSender::Sync(tx.clone()),
            AnyChannelSender::Spsc(tx) => AnyChannelSender::Spsc(tx.clone()),
            AnyChannelSender::Mpmc(tx) => AnyChannelSender::Mpmc(tx.clone()),
        }
    }
}

impl<M: Send> ChannelSender<M> for AnyChannelSender<M> {
    fn send(&self, lane: usize, message: M) -> Result<(), M> {
        match self {
            AnyChannelSender::Sync(tx) => tx.send(lane, message),
            AnyChannelSender::Spsc(tx) => tx.send(lane, message),
            AnyChannelSender::Mpmc(tx) => tx.send(lane, message),
        }
    }

    fn try_send(&self, lane: usize, message: M) -> Result<(), TrySendError<M>> {
        match self {
            AnyChannelSender::Sync(tx) => tx.try_send(lane, message),
            AnyChannelSender::Spsc(tx) => tx.try_send(lane, message),
            AnyChannelSender::Mpmc(tx) => tx.try_send(lane, message),
        }
    }
}

/// A receiver of any backend kind.
pub(crate) enum AnyChannelReceiver<M: Send> {
    Sync(SyncChannelReceiver<M>),
    Spsc(SpscReceiver<M>),
    Mpmc(MpmcReceiver<M>),
}

impl<M: Send> ChannelReceiver<M> for AnyChannelReceiver<M> {
    fn recv(&mut self) -> Option<M> {
        match self {
            AnyChannelReceiver::Sync(rx) => rx.recv(),
            AnyChannelReceiver::Spsc(rx) => rx.recv(),
            AnyChannelReceiver::Mpmc(rx) => rx.recv(),
        }
    }

    fn try_recv(&mut self) -> Option<M> {
        match self {
            AnyChannelReceiver::Sync(rx) => rx.try_recv(),
            AnyChannelReceiver::Spsc(rx) => rx.try_recv(),
            AnyChannelReceiver::Mpmc(rx) => rx.try_recv(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn open_kind<M: Send>(
        kind: ChannelBackendKind,
        capacity: usize,
        lanes: usize,
    ) -> (AnyChannelSender<M>, AnyChannelReceiver<M>) {
        kind.open(capacity, lanes, WaitPolicy::Yield)
    }

    #[test]
    fn backend_names_round_trip_and_alias_parses() {
        for kind in ChannelBackendKind::ALL {
            assert_eq!(ChannelBackendKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(
            ChannelBackendKind::parse(" SYNC_CHANNEL "),
            Some(ChannelBackendKind::Sync)
        );
        assert_eq!(ChannelBackendKind::parse("lockfree"), None);
    }

    #[test]
    fn every_backend_round_trips_messages_in_lane_order() {
        for kind in ChannelBackendKind::ALL {
            let (tx, mut rx) = open_kind::<usize>(kind, 8, 2);
            for v in 0..5 {
                tx.send(v % 2, v).expect("receiver alive");
            }
            let mut got: Vec<usize> = (0..5).map(|_| rx.recv().expect("message")).collect();
            got.sort_unstable();
            assert_eq!(got, vec![0, 1, 2, 3, 4], "{kind:?} lost or forged messages");
            assert!(rx.try_recv().is_none(), "{kind:?} channel must be drained");
        }
    }

    #[test]
    fn every_backend_reports_full_and_preserves_the_message() {
        for kind in ChannelBackendKind::ALL {
            // One lane, capacity 2: the third non-blocking send must fail
            // Full and hand the message back.
            let (tx, mut rx) = open_kind::<u32>(kind, 2, 1);
            tx.try_send(0, 10).expect("slot free");
            tx.try_send(0, 11).expect("slot free");
            match tx.try_send(0, 12) {
                Err(TrySendError::Full(m)) => assert_eq!(m, 12, "{kind:?}"),
                other => panic!("{kind:?}: expected Full, got {other:?}"),
            }
            assert_eq!(rx.try_recv(), Some(10), "{kind:?} must be FIFO per lane");
            tx.try_send(0, 12).expect("slot freed by the receive");
            assert_eq!(rx.recv(), Some(11));
            assert_eq!(rx.recv(), Some(12));
        }
    }

    #[test]
    fn dropping_the_receiver_disconnects_every_backend() {
        for kind in ChannelBackendKind::ALL {
            let (tx, rx) = open_kind::<u8>(kind, 2, 1);
            drop(rx);
            assert!(
                tx.send(0, 7).is_err(),
                "{kind:?}: blocking send must fail after receiver drop"
            );
            match tx.try_send(0, 9) {
                Err(TrySendError::Disconnected(m)) => assert_eq!(m, 9, "{kind:?}"),
                other => panic!("{kind:?}: expected Disconnected, got {other:?}"),
            }
        }
    }

    #[test]
    fn dropping_every_sender_ends_the_stream_after_draining() {
        for kind in ChannelBackendKind::ALL {
            let (tx, mut rx) = open_kind::<u16>(kind, 4, 1);
            let tx2 = tx.clone();
            tx.send(0, 1).expect("receiver alive");
            tx2.send(0, 2).expect("receiver alive");
            drop(tx);
            drop(tx2);
            assert_eq!(rx.recv(), Some(1), "{kind:?} must drain before ending");
            assert_eq!(rx.recv(), Some(2));
            assert_eq!(rx.recv(), None, "{kind:?} must report the stream's end");
        }
    }

    #[test]
    fn blocking_sends_apply_backpressure_across_threads() {
        // A real producer thread pushes far more messages than the
        // capacity; the consumer drains with deliberate pauses, so the
        // producer must block repeatedly — and nothing may be lost or
        // reordered within the lane.
        for kind in ChannelBackendKind::ALL {
            let (tx, mut rx) = open_kind::<usize>(kind, 2, 1);
            let producer = std::thread::spawn(move || {
                for v in 0..200 {
                    tx.send(0, v).expect("receiver alive");
                }
            });
            let mut got = Vec::new();
            for i in 0..200 {
                if i % 32 == 0 {
                    std::thread::sleep(Duration::from_micros(200));
                }
                got.push(rx.recv().expect("producer sends 200"));
            }
            producer.join().expect("producer thread");
            assert_eq!(got, (0..200).collect::<Vec<_>>(), "{kind:?}");
        }
    }

    #[test]
    fn spsc_lanes_are_independent_rings() {
        // 3 lanes, total capacity 3 → one slot per lane: filling lane 0
        // must not block lane 2, and draining interleaves fairly.
        let (tx, mut rx) = SpscBackend::open(3, 3, WaitPolicy::Yield);
        tx.try_send(0, 'a').expect("lane 0 has a slot");
        match tx.try_send(0, 'b') {
            Err(TrySendError::Full('b')) => {}
            other => panic!("lane 0 must be full, got {other:?}"),
        }
        tx.try_send(2, 'c').expect("lane 2 has its own slot");
        let first = rx.recv().expect("message");
        let second = rx.recv().expect("message");
        let mut both = [first, second];
        both.sort_unstable();
        assert_eq!(both, ['a', 'c']);
        assert!(rx.try_recv().is_none());
    }

    #[test]
    fn mpmc_supports_concurrent_producers() {
        let (tx, mut rx) = MpmcBackend::open(4, 1, WaitPolicy::Yield);
        let handles: Vec<_> = (0..3)
            .map(|p| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..50usize {
                        tx.send(0, p * 1000 + i).expect("receiver alive");
                    }
                })
            })
            .collect();
        let mut got = Vec::new();
        for _ in 0..150 {
            got.push(rx.recv().expect("producers send 150"));
        }
        for handle in handles {
            handle.join().expect("producer thread");
        }
        got.sort_unstable();
        let mut expected: Vec<usize> = (0..3)
            .flat_map(|p| (0..50).map(move |i| p * 1000 + i))
            .collect();
        expected.sort_unstable();
        assert_eq!(got, expected);
    }

    #[test]
    fn mpmc_works_at_capacity_one() {
        // Regression: with plain `pos`-valued stamps, "enqueued last lap"
        // and "free this lap" alias at capacity 1 and a producer would
        // overwrite the undequeued slot. The 2· stamp scheme must report
        // Full instead.
        let (tx, mut rx) = MpmcBackend::open(1, 1, WaitPolicy::Yield);
        for lap in 0..100u32 {
            tx.try_send(0, lap).expect("slot free");
            match tx.try_send(0, lap + 1000) {
                Err(TrySendError::Full(m)) => assert_eq!(m, lap + 1000),
                other => panic!("lap {lap}: expected Full, got {other:?}"),
            }
            assert_eq!(rx.try_recv(), Some(lap));
            assert!(rx.try_recv().is_none());
        }
    }

    #[test]
    fn mpmc_sequence_counters_survive_many_wraparound_laps() {
        let (tx, mut rx) = MpmcBackend::open(2, 1, WaitPolicy::Yield);
        for lap in 0..1000u32 {
            tx.try_send(0, lap * 2).expect("slot free");
            tx.try_send(0, lap * 2 + 1).expect("slot free");
            assert_eq!(rx.try_recv(), Some(lap * 2));
            assert_eq!(rx.try_recv(), Some(lap * 2 + 1));
        }
        assert!(rx.try_recv().is_none());
    }

    #[test]
    fn dropped_channels_drop_undelivered_messages_exactly_once() {
        // Leak/double-free check for the unsafe slot code: Arc'd payloads
        // left in flight must be dropped exactly once with the channel.
        for kind in ChannelBackendKind::ALL {
            let payload = Arc::new(());
            let (tx, rx) = open_kind::<Arc<()>>(kind, 4, 2);
            tx.send(0, Arc::clone(&payload)).expect("receiver alive");
            tx.send(1, Arc::clone(&payload)).expect("receiver alive");
            assert_eq!(Arc::strong_count(&payload), 3, "{kind:?}");
            drop(tx);
            drop(rx);
            assert_eq!(
                Arc::strong_count(&payload),
                1,
                "{kind:?}: in-flight messages must be dropped with the channel"
            );
        }
    }

    #[test]
    fn effective_capacity_is_honest_at_the_open_seam() {
        // Single-queue backends: the knob is the bound, whatever the lanes.
        for kind in [ChannelBackendKind::Sync, ChannelBackendKind::Mpmc] {
            assert_eq!(kind.effective_capacity(64, 7), 64);
            assert_eq!(kind.effective_capacity(2, 8), 2);
        }
        let spsc = ChannelBackendKind::Spsc;
        // The per-lane split never exceeds the requested total once the
        // capacity covers the lanes (the old div_ceil split granted 70
        // slots for capacity 64 over 7 lanes).
        assert_eq!(spsc.effective_capacity(64, 7), 63);
        assert_eq!(spsc.effective_capacity(64, 8), 64);
        assert_eq!(spsc.effective_capacity(64, 1), 64);
        for capacity in 1..=40usize {
            for lanes in 1..=10usize {
                let effective = spsc.effective_capacity(capacity, lanes);
                if capacity >= lanes {
                    assert!(
                        effective <= capacity,
                        "spsc({capacity}, {lanes}) grants {effective} slots"
                    );
                } else {
                    // The documented degenerate regime: one slot per lane.
                    assert_eq!(effective, lanes);
                }
                assert!(effective >= lanes, "every lane keeps a slot");
            }
        }
    }

    #[test]
    fn spsc_rings_hold_exactly_the_effective_capacity() {
        // Behavioural pin of `effective_capacity` against the real rings:
        // fill every lane with non-blocking sends and count the accepted
        // messages. capacity 7 over 3 lanes used to admit ceil(7/3)·3 = 9.
        for (capacity, lanes) in [(7usize, 3usize), (8, 3), (3, 3), (2, 5), (6, 1)] {
            let (tx, _rx) = SpscBackend::open(capacity, lanes, WaitPolicy::Yield);
            let mut accepted = 0usize;
            for lane in 0..lanes {
                while tx.try_send(lane, 0u8).is_ok() {
                    accepted += 1;
                }
            }
            assert_eq!(
                accepted,
                ChannelBackendKind::Spsc.effective_capacity(capacity, lanes),
                "spsc({capacity}, {lanes}) admitted a different total than documented"
            );
        }
    }

    #[test]
    fn backend_env_is_parsed_once_and_cached_for_the_process() {
        // The parse is pinned behind a OnceLock so per-job farm setup in a
        // service stays off the env/syscall path: after the first read, a
        // mutated environment must be invisible. (`get_or_init` is
        // idempotent, so this holds however tests interleave.)
        let first = ChannelBackendKind::from_env();
        std::env::set_var("LOGIT_CHANNEL_BACKEND", "mpmc");
        let second = ChannelBackendKind::from_env();
        std::env::set_var("LOGIT_CHANNEL_BACKEND", "definitely-not-a-backend");
        let third = ChannelBackendKind::from_env();
        std::env::remove_var("LOGIT_CHANNEL_BACKEND");
        assert_eq!(first, second, "a cached parse cannot follow env writes");
        assert_eq!(first, third, "a cached parse cannot re-warn or re-read");
    }
}
