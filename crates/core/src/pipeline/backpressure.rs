//! Adaptive backpressure for the farm: tune the effective batch size from
//! observed reducer lag.
//!
//! The static `chunk_ticks`/`channel_capacity` knobs force one trade at
//! configuration time: small chunks keep the reducer's latency low and the
//! snapshot pool small, big chunks amortise per-batch overhead (channel
//! traffic, `Vec` recycling, reducer wakeups). When the reducer keeps up,
//! the static choice is fine; when it lags (an expensive fold, a slow
//! consumer downstream), workers stall on a full channel and the per-batch
//! overhead is pure waste.
//!
//! [`LagController`] closes that loop. Workers read
//! [`chunk_ticks`](LagController::chunk_ticks) before each chunk and call
//! [`before_send`](LagController::before_send) before publishing a batch;
//! the reducer calls [`after_recv`](LagController::after_recv) as batches
//! land. The controller watches channel occupancy (its own in-flight
//! count — exact, unlike peeking at backend internals):
//!
//! * sustained high occupancy → the reducer is the bottleneck → double the
//!   chunk size (fewer, larger batches; bounded by `64 × base`), and widen
//!   the soft in-flight cap toward the configured capacity;
//! * an empty channel → the workers are the bottleneck → halve the chunk
//!   size back toward the configured base, restoring snapshot latency.
//!
//! Everything the controller changes is **unobservable in the results**:
//! chunk boundaries and channel capacity were proven result-invariant by
//! the PR-4 proptests (the ordered reducer restores replica order, and
//! per-replica sample values never depend on where a chunk ends), so
//! adaptive mode keeps the bit-identity pin. The controller is plain
//! atomics — no locks, no syscalls — and its throttle wait escalates
//! through bounded yields, so it can neither wedge a farm whose reducer
//! died (the real send detects disconnection) nor tax an idle host.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// How far the controller may grow a chunk above the configured
/// `chunk_ticks` base. Bounds snapshot latency and pool growth.
const MAX_CHUNK_GROWTH: u64 = 64;

/// Throttle loop bound: a producer waiting for the soft cap yields at most
/// this many times before proceeding to the real bounded send, so a dead
/// reducer can never wedge a worker here.
const MAX_THROTTLE_POLLS: u32 = 1024;

/// Occupancy-driven controller for the farm's chunking and in-flight
/// depth. One instance per farm run, shared by reference between the
/// worker closures and the reducer. Disabled instances compile down to a
/// relaxed load per chunk and two no-op calls per batch.
pub(crate) struct LagController {
    enabled: bool,
    base_chunk: u64,
    max_chunk: u64,
    capacity: usize,
    /// The chunk size workers use for their next chunk.
    chunk: AtomicU64,
    /// Batches sent but not yet folded — the exact channel occupancy.
    inflight: AtomicUsize,
    /// Soft bound on `inflight`; starts low and widens under sustained
    /// stall so a keeping-up reducer sees short queues (low latency) and
    /// a lagging one gets the full configured capacity.
    soft_cap: AtomicUsize,
    /// Telemetry for tests: chunk raises, chunk shrinks, soft-cap stalls.
    raises: AtomicUsize,
    shrinks: AtomicUsize,
    stalls: AtomicUsize,
    /// Live instruments mirroring the above plus the chunk trajectory
    /// (`pipeline.send_throttle_stalls`, `pipeline.chunk_raises`,
    /// `pipeline.chunk_shrinks`, `pipeline.chunk_ticks`). Zero-sized
    /// no-ops without the `telemetry` feature.
    stall_counter: logit_telemetry::Counter,
    raise_counter: logit_telemetry::Counter,
    shrink_counter: logit_telemetry::Counter,
    chunk_gauge: logit_telemetry::Gauge,
}

impl LagController {
    /// A controller for one farm run. When `enabled` is false every hook
    /// is a no-op and `chunk_ticks()` always returns `base_chunk`.
    pub(crate) fn new(enabled: bool, base_chunk: u64, capacity: usize, workers: usize) -> Self {
        assert!(base_chunk >= 1, "chunk_ticks must be at least 1");
        assert!(capacity >= 1, "channel_capacity must be at least 1");
        let registry = logit_telemetry::global();
        LagController {
            enabled,
            base_chunk,
            max_chunk: base_chunk.saturating_mul(MAX_CHUNK_GROWTH),
            capacity,
            chunk: AtomicU64::new(base_chunk),
            inflight: AtomicUsize::new(0),
            // Two batches in flight per worker keeps everyone busy
            // without queueing latency; widened on demand.
            soft_cap: AtomicUsize::new((2 * workers.max(1)).clamp(1, capacity)),
            raises: AtomicUsize::new(0),
            shrinks: AtomicUsize::new(0),
            stalls: AtomicUsize::new(0),
            stall_counter: registry.counter("pipeline.send_throttle_stalls"),
            raise_counter: registry.counter("pipeline.chunk_raises"),
            shrink_counter: registry.counter("pipeline.chunk_shrinks"),
            chunk_gauge: registry.gauge("pipeline.chunk_ticks"),
        }
    }

    /// The chunk size a worker should use for its next chunk of ticks.
    pub(crate) fn chunk_ticks(&self) -> u64 {
        if !self.enabled {
            return self.base_chunk;
        }
        self.chunk.load(Ordering::Relaxed)
    }

    /// Called by a worker immediately before sending a batch: waits
    /// (bounded) while the soft in-flight cap is hit, then registers the
    /// batch. The wait is a latency hint, not a correctness gate — the
    /// real backpressure is the bounded channel send that follows.
    pub(crate) fn before_send(&self) {
        if !self.enabled {
            return;
        }
        let mut polls = 0u32;
        while self.inflight.load(Ordering::Relaxed) >= self.soft_cap.load(Ordering::Relaxed) {
            polls += 1;
            if polls > MAX_THROTTLE_POLLS {
                // Sustained stall: the reducer is far behind (or gone).
                // Widen the soft cap toward the hard capacity so the
                // configured buffering is actually used, and proceed to
                // the real send rather than spinning forever.
                self.stalls.fetch_add(1, Ordering::Relaxed);
                self.stall_counter.inc();
                let cap = self.soft_cap.load(Ordering::Relaxed);
                let widened = (cap * 2).clamp(1, self.capacity);
                self.soft_cap.store(widened, Ordering::Relaxed);
                break;
            }
            std::thread::yield_now();
        }
        self.inflight.fetch_add(1, Ordering::Relaxed);
    }

    /// Called by the reducer as each batch arrives: retires the batch and
    /// adjusts the chunk size from the occupancy it observed.
    pub(crate) fn after_recv(&self) {
        if !self.enabled {
            return;
        }
        let occupancy = self.inflight.fetch_sub(1, Ordering::Relaxed);
        let cap = self.soft_cap.load(Ordering::Relaxed).max(1);
        if occupancy * 4 >= cap * 3 {
            // ≥ 75 % full on arrival: the reducer is lagging; amortise
            // its per-batch overhead with bigger chunks.
            let chunk = self.chunk.load(Ordering::Relaxed);
            if chunk < self.max_chunk {
                let raised = (chunk * 2).min(self.max_chunk);
                self.chunk.store(raised, Ordering::Relaxed);
                self.raises.fetch_add(1, Ordering::Relaxed);
                self.raise_counter.inc();
                self.chunk_gauge.set(raised as f64);
            }
        } else if occupancy <= 1 {
            // The queue ran dry: the workers are the bottleneck; shrink
            // back toward the configured base for snapshot latency.
            let chunk = self.chunk.load(Ordering::Relaxed);
            if chunk > self.base_chunk {
                let shrunk = (chunk / 2).max(self.base_chunk);
                self.chunk.store(shrunk, Ordering::Relaxed);
                self.shrinks.fetch_add(1, Ordering::Relaxed);
                self.shrink_counter.inc();
                self.chunk_gauge.set(shrunk as f64);
            }
        }
    }

    #[cfg(test)]
    fn counters(&self) -> (usize, usize, usize) {
        (
            self.raises.load(Ordering::Relaxed),
            self.shrinks.load(Ordering::Relaxed),
            self.stalls.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_disabled_controller_never_moves_off_the_base_chunk() {
        let ctl = LagController::new(false, 7, 4, 2);
        for _ in 0..100 {
            ctl.before_send();
        }
        for _ in 0..100 {
            ctl.after_recv();
        }
        assert_eq!(ctl.chunk_ticks(), 7);
        assert_eq!(ctl.counters(), (0, 0, 0));
    }

    #[test]
    fn sustained_occupancy_grows_the_chunk_toward_the_cap() {
        let ctl = LagController::new(true, 4, 8, 1);
        // Fill to the soft cap, then model a lagging reducer: every
        // arrival still sees a near-full queue.
        for _ in 0..8 {
            ctl.before_send();
        }
        for _ in 0..20 {
            ctl.after_recv();
            ctl.before_send();
        }
        assert!(
            ctl.chunk_ticks() > 4,
            "a lagging reducer must raise the chunk, got {}",
            ctl.chunk_ticks()
        );
        assert!(ctl.chunk_ticks() <= 4 * MAX_CHUNK_GROWTH);
        let (raises, _, _) = ctl.counters();
        assert!(raises >= 1);
    }

    #[test]
    fn an_empty_queue_shrinks_the_chunk_back_to_the_base() {
        let ctl = LagController::new(true, 4, 8, 1);
        for _ in 0..8 {
            ctl.before_send();
        }
        for _ in 0..20 {
            ctl.after_recv();
            ctl.before_send();
        }
        let grown = ctl.chunk_ticks();
        assert!(grown > 4);
        // Now the reducer keeps up: drain completely between sends.
        for _ in 0..8 {
            ctl.after_recv();
        }
        for _ in 0..20 {
            ctl.before_send();
            ctl.after_recv();
        }
        assert_eq!(
            ctl.chunk_ticks(),
            4,
            "an idle queue must shrink the chunk back to the base"
        );
        let (_, shrinks, _) = ctl.counters();
        assert!(shrinks >= 1);
    }

    #[test]
    fn the_throttle_wait_is_bounded_and_widens_the_soft_cap() {
        let ctl = LagController::new(true, 1, 64, 1);
        // Nothing ever calls after_recv (a dead reducer): every send past
        // the soft cap must still return after the bounded wait.
        for _ in 0..10 {
            ctl.before_send();
        }
        let (_, _, stalls) = ctl.counters();
        assert!(
            stalls >= 1,
            "a saturated soft cap must be recorded as a stall"
        );
        assert!(ctl.soft_cap.load(Ordering::Relaxed) > 2);
        assert!(ctl.soft_cap.load(Ordering::Relaxed) <= 64);
    }

    #[test]
    fn the_chunk_growth_cap_bounds_snapshot_latency() {
        let ctl = LagController::new(true, 3, 4, 1);
        // Hammer the raise path far past the cap.
        for _ in 0..4 {
            ctl.before_send();
        }
        for _ in 0..200 {
            ctl.after_recv();
            ctl.before_send();
        }
        assert!(ctl.chunk_ticks() <= 3 * MAX_CHUNK_GROWTH);
    }
}
