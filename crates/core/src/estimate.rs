//! Mixing-time measurement for the logit dynamics.
//!
//! Three complementary routes, matching how the experiments verify the paper's
//! bounds:
//!
//! * [`exact_mixing_time`] — builds the full transition matrix, uses the Gibbs
//!   measure as the stationary distribution and computes `t_mix(ε)` exactly
//!   (`logit-markov::mixing`). Feasible for `|S| ≲ 4096`.
//! * [`spectral_mixing_bounds`] — the Theorem 2.3 sandwich via the relaxation
//!   time, also exact but cheaper to evaluate repeatedly across β once the
//!   spectrum is known.
//! * [`exact_mixing_time_general`] — for games *without* a potential (no Gibbs
//!   closed form) the stationary distribution is obtained by a linear solve
//!   first. Used by the Section 4 experiments on games with dominant strategies
//!   that are not potential games.

use crate::dynamics::{DynamicsEngine, LogitDynamics};
use crate::gibbs;
use crate::rules::{Logit, UpdateRule};
use logit_games::{Game, PotentialGame};
use logit_markov::{
    mixing_time, spectral_analysis, stationary_distribution, MarkovChain, SpectralSummary,
};

/// A single measurement of the convergence behaviour of `M_β(G)`.
#[derive(Debug, Clone)]
pub struct MixingMeasurement {
    /// Inverse noise β.
    pub beta: f64,
    /// Number of states `|S|`.
    pub num_states: usize,
    /// Exact mixing time `t_mix(ε)`, `None` when it exceeded the search budget.
    pub mixing_time: Option<u64>,
    /// The ε used.
    pub epsilon: f64,
    /// Relaxation time `1/(1 − λ*)`.
    pub relaxation_time: f64,
    /// Spectral gap `1 − λ₂`.
    pub spectral_gap: f64,
    /// Smallest eigenvalue of the transition matrix.
    pub lambda_min: f64,
    /// Theorem 2.3 lower bound `(t_rel − 1)·log(1/2ε)`.
    pub spectral_lower_bound: f64,
    /// Theorem 2.3 upper bound `t_rel·log(1/(ε·π_min))`.
    pub spectral_upper_bound: f64,
}

/// Exact mixing-time measurement for a potential game.
///
/// `max_time` caps the exact mixing-time search (use a generous power of two);
/// the spectral quantities are always computed.
pub fn exact_mixing_time<G: PotentialGame>(
    game: &G,
    beta: f64,
    epsilon: f64,
    max_time: u64,
) -> MixingMeasurement {
    let dynamics = LogitDynamics::new(game, beta);
    let chain = dynamics.transition_chain();
    let pi = gibbs::gibbs_distribution(game, beta);
    measure(&chain, &pi, beta, epsilon, max_time)
}

/// Exact mixing-time measurement for an arbitrary (possibly non-potential) game.
/// The stationary distribution is computed by solving `πP = π`; the spectral
/// bounds are only filled in when the chain happens to be reversible with
/// respect to it (otherwise they are reported as `NaN`).
pub fn exact_mixing_time_general<G: Game>(
    game: &G,
    beta: f64,
    epsilon: f64,
    max_time: u64,
) -> MixingMeasurement {
    exact_mixing_time_with_rule(game, Logit, beta, epsilon, max_time)
}

/// Exact mixing-time measurement for an arbitrary [`UpdateRule`] under
/// uniform single-player selection.
///
/// The stationary distribution is obtained by a linear solve, so this also
/// serves rules without detailed balance (noisy best response) and
/// non-potential games; for the reversible rules on potential games it
/// agrees with [`exact_mixing_time`]. Spectral quantities are reported as
/// `NaN` when the chain is not reversible with respect to its stationary
/// distribution.
pub fn exact_mixing_time_with_rule<G: Game, U: UpdateRule>(
    game: &G,
    rule: U,
    beta: f64,
    epsilon: f64,
    max_time: u64,
) -> MixingMeasurement {
    let dynamics = DynamicsEngine::with_rule(game, rule, beta);
    let chain = dynamics.transition_chain();
    let pi = stationary_distribution(&chain);
    if chain.is_reversible(&pi, 1e-7) && pi.min() > 0.0 {
        measure(&chain, &pi, beta, epsilon, max_time)
    } else {
        let mixing = mixing_time(&chain, &pi, epsilon, max_time).map(|r| r.mixing_time);
        MixingMeasurement {
            beta,
            num_states: chain.num_states(),
            mixing_time: mixing,
            epsilon,
            relaxation_time: f64::NAN,
            spectral_gap: f64::NAN,
            lambda_min: f64::NAN,
            spectral_lower_bound: f64::NAN,
            spectral_upper_bound: f64::NAN,
        }
    }
}

fn measure(
    chain: &MarkovChain,
    pi: &logit_linalg::Vector,
    beta: f64,
    epsilon: f64,
    max_time: u64,
) -> MixingMeasurement {
    let spectral: SpectralSummary = spectral_analysis(chain, pi);
    let mixing = mixing_time(chain, pi, epsilon, max_time).map(|r| r.mixing_time);
    MixingMeasurement {
        beta,
        num_states: chain.num_states(),
        mixing_time: mixing,
        epsilon,
        relaxation_time: spectral.relaxation_time,
        spectral_gap: spectral.spectral_gap,
        lambda_min: spectral.lambda_min,
        spectral_lower_bound: spectral.mixing_time_lower_bound(epsilon),
        spectral_upper_bound: spectral.mixing_time_upper_bound(epsilon, pi.min()),
    }
}

/// The Theorem 2.3 sandwich on its own (no exact mixing-time search), useful
/// when only relaxation-time behaviour is needed.
pub fn spectral_mixing_bounds<G: PotentialGame>(game: &G, beta: f64) -> SpectralSummary {
    let dynamics = LogitDynamics::new(game, beta);
    let chain = dynamics.transition_chain();
    let pi = gibbs::gibbs_distribution(game, beta);
    spectral_analysis(&chain, &pi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use logit_games::{
        AllZeroDominantGame, CoordinationGame, GraphicalCoordinationGame, TwoPlayerGame, WellGame,
    };
    use logit_graphs::GraphBuilder;

    #[test]
    fn measurement_is_internally_consistent() {
        let game = WellGame::plateau(4, 2.0);
        let m = exact_mixing_time(&game, 1.0, 0.25, 1 << 30);
        let t = m.mixing_time.expect("small game must mix within budget") as f64;
        assert!(m.spectral_lower_bound <= t + 1.0);
        assert!(t <= m.spectral_upper_bound + 1.0);
        assert!(m.relaxation_time >= 1.0);
        assert_eq!(m.num_states, 16);
    }

    #[test]
    fn theorem_3_1_holds_lambda_min_nonnegative() {
        // Theorem 3.1: all eigenvalues of the logit chain of a potential game are
        // non-negative.
        for beta in [0.0, 0.5, 2.0] {
            let game = GraphicalCoordinationGame::new(
                GraphBuilder::ring(3),
                CoordinationGame::from_deltas(2.0, 1.0),
            );
            let m = exact_mixing_time(&game, beta, 0.25, 1 << 20);
            assert!(
                m.lambda_min >= -1e-9,
                "negative eigenvalue {} at beta {beta}",
                m.lambda_min
            );
        }
    }

    #[test]
    fn mixing_time_grows_with_beta_for_the_well_game() {
        let game = WellGame::plateau(4, 2.0);
        let low = exact_mixing_time(&game, 0.5, 0.25, 1 << 30)
            .mixing_time
            .unwrap();
        let high = exact_mixing_time(&game, 2.5, 0.25, 1 << 30)
            .mixing_time
            .unwrap();
        assert!(high > low, "higher beta must slow the well game down");
    }

    #[test]
    fn dominant_strategy_game_mixing_plateaus_in_beta() {
        let game = AllZeroDominantGame::new(3, 2);
        let t1 = exact_mixing_time(&game, 2.0, 0.25, 1 << 30)
            .mixing_time
            .unwrap();
        let t2 = exact_mixing_time(&game, 20.0, 0.25, 1 << 30)
            .mixing_time
            .unwrap();
        // Theorem 4.2: bounded independently of beta; allow small wiggle.
        assert!(
            t2 <= t1.saturating_mul(3).max(t1 + 20),
            "mixing time should not blow up with beta: {t1} -> {t2}"
        );
        assert!((t2 as f64) <= crate::bounds::theorem_4_2_mixing_upper(3, 2));
    }

    #[test]
    fn general_measurement_works_for_non_potential_games() {
        let game = TwoPlayerGame::matching_pennies();
        let m = exact_mixing_time_general(&game, 1.0, 0.25, 1 << 20);
        assert!(m.mixing_time.is_some());
        assert_eq!(m.num_states, 4);
    }

    #[test]
    fn metropolis_measurement_is_reversible_and_mixes() {
        let game = WellGame::plateau(4, 2.0);
        let m =
            exact_mixing_time_with_rule(&game, crate::rules::MetropolisLogit, 1.0, 0.25, 1 << 30);
        assert!(m.mixing_time.is_some());
        // Metropolis is reversible w.r.t. Gibbs, so the spectral sandwich is
        // filled in rather than NaN.
        assert!(m.relaxation_time.is_finite());
        assert!(m.relaxation_time >= 1.0);
    }

    #[test]
    fn noisy_best_response_measurement_works_without_reversibility() {
        let game = WellGame::plateau(3, 1.0);
        let rule = crate::rules::NoisyBestResponse::new(0.3);
        let m = exact_mixing_time_with_rule(&game, rule, 1.0, 0.25, 1 << 20);
        assert!(m.mixing_time.is_some());
        assert_eq!(m.num_states, 8);
    }

    #[test]
    fn spectral_bounds_only_shortcut() {
        let game = CoordinationGame::from_deltas(2.0, 1.0);
        let s = spectral_mixing_bounds(&game, 1.0);
        assert!(s.relaxation_time >= 1.0);
        assert!(s.lambda_2 < 1.0);
    }
}
