//! The potential-barrier quantity `ζ` of Section 3.4.
//!
//! For profiles `x, y` with `Φ(x) ≥ Φ(y)`, `ζ(x, y)` is the smallest, over all
//! Hamming-graph paths from `x` to `y`, of the maximum potential *increase*
//! along the path (relative to `Φ(x)`); `ζ = max_{x,y} ζ(x, y)` is the largest
//! such barrier in the game. Theorems 3.8/3.9 show the mixing time for large β
//! is `e^{βζ(1±o(1))}`.
//!
//! `ζ` is computed with the classic union-find sweep over states sorted by
//! potential: processing states in increasing order of `Φ` and merging each new
//! state with its already-processed neighbours, two components `A`, `B` that
//! merge at level `L` contribute `L − max(min_Φ A, min_Φ B)` — the saddle height
//! above the shallower of the two basins. The maximum over all merges is exactly
//! `ζ`. A brute-force reference implementation is provided for testing.

use logit_games::{PotentialGame, ProfileSpace};

/// Result of a barrier computation.
#[derive(Debug, Clone, PartialEq)]
pub struct BarrierResult {
    /// The barrier `ζ ≥ 0`.
    pub zeta: f64,
    /// A pair `(x, y)` of flat profile indices achieving `ζ` (the first entry is
    /// the higher-potential endpoint). `None` only for single-state games.
    pub witness: Option<(usize, usize)>,
}

struct DisjointSet {
    parent: Vec<usize>,
    rank: Vec<u32>,
    /// Index of the minimum-potential state in each component (valid at roots).
    argmin: Vec<usize>,
}

impl DisjointSet {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
            rank: vec![0; n],
            argmin: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    /// Unions the components of `a` and `b`; returns the new root.
    fn union(&mut self, a: usize, b: usize, potentials: &[f64]) -> usize {
        let (ra, rb) = (self.find(a), self.find(b));
        debug_assert_ne!(ra, rb);
        let (hi, lo) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo] = hi;
        if self.rank[hi] == self.rank[lo] {
            self.rank[hi] += 1;
        }
        if potentials[self.argmin[lo]] < potentials[self.argmin[hi]] {
            self.argmin[hi] = self.argmin[lo];
        }
        hi
    }
}

/// Computes `ζ` for a potential game by the union-find sweep.
pub fn zeta<G: PotentialGame>(game: &G) -> BarrierResult {
    let space = game.profile_space();
    let mut buf = vec![0usize; game.num_players()];
    let potentials: Vec<f64> = space
        .indices()
        .map(|idx| {
            space.write_profile(idx, &mut buf);
            game.potential(&buf)
        })
        .collect();
    zeta_from_potentials(&potentials, &space)
}

/// Computes `ζ` from an explicit vector of potentials indexed by the flat
/// profile index of `space`.
pub fn zeta_from_potentials(potentials: &[f64], space: &ProfileSpace) -> BarrierResult {
    let n = space.size();
    assert_eq!(potentials.len(), n, "one potential per profile");
    if n <= 1 {
        return BarrierResult {
            zeta: 0.0,
            witness: None,
        };
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        potentials[a]
            .partial_cmp(&potentials[b])
            .expect("potentials must be finite")
    });

    let mut dsu = DisjointSet::new(n);
    let mut inserted = vec![false; n];
    let mut zeta = 0.0f64;
    let mut witness = None;

    for &v in &order {
        let level = potentials[v];
        inserted[v] = true;
        for (_, _, w) in space.deviations(v) {
            if !inserted[w] {
                continue;
            }
            let rv = dsu.find(v);
            let rw = dsu.find(w);
            if rv == rw {
                continue;
            }
            let (min_v_idx, min_w_idx) = (dsu.argmin[rv], dsu.argmin[rw]);
            // The shallower basin's minimum is the higher-potential endpoint of
            // the witness pair; the deeper basin's minimum is the other endpoint.
            let (hi_idx, lo_idx) = if potentials[min_v_idx] >= potentials[min_w_idx] {
                (min_v_idx, min_w_idx)
            } else {
                (min_w_idx, min_v_idx)
            };
            let contribution = level - potentials[hi_idx];
            if contribution > zeta {
                zeta = contribution;
                witness = Some((hi_idx, lo_idx));
            }
            dsu.union(rv, rw, potentials);
        }
    }
    if witness.is_none() {
        // No positive barrier: any pair works as a trivial witness.
        witness = Some((order[n - 1], order[0]));
    }
    BarrierResult { zeta, witness }
}

/// Brute-force reference computation of `ζ` (exponential in the number of
/// profiles; only for tests and tiny games).
///
/// For every ordered pair `(x, y)` with `Φ(x) ≥ Φ(y)` it finds the minimax peak
/// by checking, for increasing thresholds `θ`, whether `x` and `y` are connected
/// in the subgraph of profiles with potential `≤ θ`.
pub fn zeta_brute_force<G: PotentialGame>(game: &G) -> f64 {
    let space = game.profile_space();
    let mut buf = vec![0usize; game.num_players()];
    let potentials: Vec<f64> = space
        .indices()
        .map(|idx| {
            space.write_profile(idx, &mut buf);
            game.potential(&buf)
        })
        .collect();
    let n = space.size();
    let mut thresholds: Vec<f64> = potentials.clone();
    thresholds.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    thresholds.dedup();

    let connected_below = |theta: f64, from: usize, to: usize| -> bool {
        if potentials[from] > theta || potentials[to] > theta {
            return false;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![from];
        seen[from] = true;
        while let Some(u) = stack.pop() {
            if u == to {
                return true;
            }
            for (_, _, w) in space.deviations(u) {
                if !seen[w] && potentials[w] <= theta {
                    seen[w] = true;
                    stack.push(w);
                }
            }
        }
        false
    };

    let mut zeta = 0.0f64;
    for x in 0..n {
        for y in 0..n {
            if x == y || potentials[x] < potentials[y] {
                continue;
            }
            // Smallest threshold at which x and y are connected.
            let peak = thresholds
                .iter()
                .copied()
                .find(|&theta| connected_below(theta, x, y))
                .expect("the full space is connected at the max threshold");
            zeta = zeta.max(peak - potentials[x]);
        }
    }
    zeta
}

#[cfg(test)]
mod tests {
    use super::*;
    use logit_games::{
        AllZeroDominantGame, CoordinationGame, Game, GraphicalCoordinationGame, TablePotentialGame,
        WellGame,
    };
    use logit_graphs::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn well_game_barrier_is_global_variation() {
        // The well game has two basins of depth ΔΦ separated by a ridge at 0, so
        // ζ = ΔΦ.
        for (n, g, l) in [(4, 2.0, 2.0), (6, 4.0, 2.0), (8, 3.0, 1.0)] {
            let game = WellGame::new(n, g, l);
            let result = zeta(&game);
            assert!(
                (result.zeta - g).abs() < 1e-12,
                "well game ζ should equal ΔΦ={g}, got {}",
                result.zeta
            );
        }
    }

    #[test]
    fn dominant_game_barrier_is_zero() {
        // In the Theorem 4.3 game, the unique potential minimiser 0 is reachable
        // from any profile by a monotone path, and every other profile has the
        // same potential, so no pair needs to climb: ζ = 0.
        let game = AllZeroDominantGame::new(3, 3);
        let result = zeta(&game);
        assert_eq!(result.zeta, 0.0);
    }

    #[test]
    fn coordination_game_barrier() {
        // 2-player coordination game with δ0=3, δ1=2: going from (1,1) (potential
        // -2) to (0,0) (potential -3) must pass through a mismatched profile of
        // potential 0, so ζ = 0 - (-2) = 2 = δ1.
        let game = CoordinationGame::from_deltas(3.0, 2.0);
        let result = zeta(&game);
        assert!((result.zeta - 2.0).abs() < 1e-12);
        // The witness's higher endpoint is the shallower equilibrium (1,1).
        let space = game.profile_space();
        let (hi, _) = result.witness.unwrap();
        assert_eq!(hi, space.index_of(&[1, 1]));
    }

    #[test]
    fn ring_coordination_barrier_is_local() {
        // On the ring with δ0=δ1=δ, flipping the ring from all-ones to all-zeros
        // can be done one contiguous arc at a time, paying only the two boundary
        // edges: ζ = 2δ.
        let delta = 1.5;
        let game = GraphicalCoordinationGame::new(
            GraphBuilder::ring(5),
            CoordinationGame::symmetric(delta),
        );
        let result = zeta(&game);
        assert!(
            (result.zeta - 2.0 * delta).abs() < 1e-9,
            "ring barrier should be 2δ, got {}",
            result.zeta
        );
    }

    #[test]
    fn clique_coordination_barrier_matches_closed_form() {
        use logit_games::graphical::clique_barrier;
        let (n, d0, d1) = (5, 2.0, 1.0);
        let game = GraphicalCoordinationGame::new(
            GraphBuilder::clique(n),
            CoordinationGame::from_deltas(d0, d1),
        );
        let result = zeta(&game);
        let expected = clique_barrier(n, d0, d1);
        assert!(
            (result.zeta - expected).abs() < 1e-9,
            "clique ζ {} vs closed form {}",
            result.zeta,
            expected
        );
    }

    #[test]
    fn union_find_matches_brute_force_on_random_games() {
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..10 {
            let game = TablePotentialGame::random(vec![2, 2, 2], 3.0, &mut rng);
            let fast = zeta(&game).zeta;
            let slow = zeta_brute_force(&game);
            assert!(
                (fast - slow).abs() < 1e-9,
                "union-find ζ={fast} disagrees with brute force ζ={slow}"
            );
        }
    }

    #[test]
    fn union_find_matches_brute_force_on_multistrategy_games() {
        let mut rng = StdRng::seed_from_u64(78);
        for _ in 0..5 {
            let game = TablePotentialGame::random(vec![3, 2, 3], 2.0, &mut rng);
            let fast = zeta(&game).zeta;
            let slow = zeta_brute_force(&game);
            assert!((fast - slow).abs() < 1e-9);
        }
    }

    #[test]
    fn single_state_game_has_zero_barrier() {
        let space = logit_games::ProfileSpace::uniform(1, 1);
        let result = zeta_from_potentials(&[0.0], &space);
        assert_eq!(result.zeta, 0.0);
        assert!(result.witness.is_none());
    }

    #[test]
    fn witness_pair_is_consistent_with_zeta() {
        let mut rng = StdRng::seed_from_u64(79);
        let game = TablePotentialGame::random(vec![2, 2, 2, 2], 4.0, &mut rng);
        let result = zeta(&game);
        let (hi, lo) = result.witness.unwrap();
        let space = game.profile_space();
        let phi_hi = game.potential(&space.profile_of(hi));
        let phi_lo = game.potential(&space.profile_of(lo));
        assert!(phi_hi >= phi_lo - 1e-12);
        // The barrier from hi to lo can never exceed ζ (by definition of max).
        assert!(result.zeta >= 0.0);
    }
}
