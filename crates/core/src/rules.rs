//! Pluggable revision rules: how a selected player resamples her strategy.
//!
//! The paper studies *logit dynamics* — the softmax update of eq. (2) — but
//! its metastability and mixing results are routinely compared against other
//! noisy revision processes on the same game: Metropolis-style chains (same
//! Gibbs stationary distribution, different transition kernel) and noisy
//! best-response dynamics (the mutation model of evolutionary game theory).
//! The [`UpdateRule`] trait is the seam that makes those comparisons
//! expressible: a rule turns the utility vector of the updating player into
//! the distribution her next strategy is drawn from, and everything else —
//! both simulation engines, the exact chain constructions, ensembles, sweeps,
//! annealing — is generic over it (see
//! [`DynamicsEngine`](crate::dynamics::DynamicsEngine)).
//!
//! A rule fills a probability vector from `(β, current strategy, utilities)`.
//! The utilities arrive through the games' batch `utilities_for` hook, so a
//! rule never touches the game itself and stays `O(|S_i|)` per update.

/// A single-player revision rule: given the inverse noise `β`, the player's
/// current strategy and the utilities of all her strategies (opponents
/// fixed), produces the distribution her next strategy is sampled from.
///
/// Contract: after `fill_probs(beta, current, utils, probs)`,
/// `probs.len() == utils.len()`, every entry is finite and non-negative, and
/// the entries sum to 1 (up to rounding). `current < utils.len()` always
/// holds at the call sites.
pub trait UpdateRule: std::fmt::Debug + Clone + Send + Sync {
    /// Fills `probs` (cleared first) with the update distribution.
    fn fill_probs(&self, beta: f64, current: usize, utils: &[f64], probs: &mut Vec<f64>);

    /// Short identifier used in reports and benchmark rows.
    fn name(&self) -> &'static str;
}

/// The logit (Glauber/softmax) rule of eq. (2) — the paper's dynamics:
/// `σ_i(y | x) ∝ e^{β·u_i(y, x_{-i})}`, independent of the current strategy.
///
/// Numerically stable via the usual log-sum-exp shift, so large `β·u` values
/// do not overflow. For potential games the induced (uniform-selection) chain
/// is reversible with respect to the Gibbs measure `π(x) ∝ e^{-βΦ(x)}`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Logit;

impl UpdateRule for Logit {
    fn fill_probs(&self, beta: f64, _current: usize, utils: &[f64], probs: &mut Vec<f64>) {
        let max = utils
            .iter()
            .map(|&u| beta * u)
            .fold(f64::NEG_INFINITY, f64::max);
        probs.clear();
        probs.extend(utils.iter().map(|&u| (beta * u - max).exp()));
        let total: f64 = probs.iter().sum();
        for p in probs.iter_mut() {
            *p /= total;
        }
    }

    fn name(&self) -> &'static str {
        "logit"
    }
}

/// The Metropolis rule at inverse noise `β`: propose a strategy uniformly at
/// random and accept with probability `min(1, e^{β·(u(y) − u(current))})`;
/// rejected proposals (and proposing the current strategy) stay put.
///
/// For potential games the induced (uniform-selection) chain is — like the
/// logit chain — reversible with respect to the *same* Gibbs measure
/// `π(x) ∝ e^{-βΦ(x)}`: the two dynamics share a stationary distribution but
/// not a kernel, which is exactly what makes their mixing comparison
/// interesting (Metropolis chains can have negative eigenvalues; Theorem 3.1
/// is special to the logit kernel).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetropolisLogit;

impl UpdateRule for MetropolisLogit {
    fn fill_probs(&self, beta: f64, current: usize, utils: &[f64], probs: &mut Vec<f64>) {
        let m = utils.len();
        probs.clear();
        probs.resize(m, 0.0);
        let u_cur = utils[current];
        let mut stay = 0.0;
        for (s, &u) in utils.iter().enumerate() {
            if s == current {
                continue;
            }
            // min(1, e^{βΔu}) is safe even when βΔu overflows to +∞.
            let accept = (beta * (u - u_cur)).exp().min(1.0);
            let move_prob = accept / m as f64;
            probs[s] = move_prob;
            stay += move_prob;
        }
        probs[current] = 1.0 - stay;
    }

    fn name(&self) -> &'static str {
        "metropolis"
    }
}

/// Noisy best response with mutation rate `ε`: with probability `1 − ε` pick
/// uniformly among the utility-maximising strategies, with probability `ε`
/// pick uniformly among all strategies.
///
/// `β` is ignored — the noise level is `ε` itself. The induced chain is
/// ergodic for `ε > 0` but is *not* reversible with respect to the Gibbs
/// measure in general; its stationary distribution is obtained by a linear
/// solve (see [`exact_mixing_time_with_rule`](crate::estimate::exact_mixing_time_with_rule)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoisyBestResponse {
    epsilon: f64,
}

impl NoisyBestResponse {
    /// Creates the rule with mutation rate `ε ∈ [0, 1]`.
    ///
    /// # Panics
    /// Panics when `ε` is outside `[0, 1]` or not finite. `ε = 0` (pure best
    /// response) is allowed but yields a non-ergodic chain on most games.
    pub fn new(epsilon: f64) -> Self {
        assert!((0.0..=1.0).contains(&epsilon), "epsilon must lie in [0, 1]");
        Self { epsilon }
    }

    /// The mutation rate `ε`.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }
}

impl Default for NoisyBestResponse {
    /// `ε = 0.1`, a conventional mutation rate.
    fn default() -> Self {
        Self::new(0.1)
    }
}

impl UpdateRule for NoisyBestResponse {
    fn fill_probs(&self, _beta: f64, _current: usize, utils: &[f64], probs: &mut Vec<f64>) {
        let m = utils.len();
        probs.clear();
        probs.resize(m, self.epsilon / m as f64);
        let best = utils.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let ties = utils.iter().filter(|&&u| u == best).count();
        let share = (1.0 - self.epsilon) / ties as f64;
        for (s, &u) in utils.iter().enumerate() {
            if u == best {
                probs[s] += share;
            }
        }
    }

    fn name(&self) -> &'static str {
        "noisy_best_response"
    }
}

/// The Fermi (pairwise-comparison) rule of evolutionary game theory:
/// propose a strategy uniformly at random — the mean-field form of sampling
/// a co-player and considering her strategy — and adopt it with the
/// logistic probability `1 / (1 + e^{−β·(u(y) − u(current))})` of the
/// payoff difference; otherwise stay.
///
/// The acceptance ratio `a(Δ)/a(−Δ) = e^{βΔ}` is the same as the logit and
/// Metropolis rules', so for potential games the uniform-selection chain is
/// — like theirs — reversible with respect to the Gibbs measure
/// `π(x) ∝ e^{−βΦ(x)}`: a third kernel sharing the stationary law, with
/// its own mixing behaviour (at `Δ = 0` it moves with probability ½ where
/// Metropolis always accepts).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Fermi;

impl UpdateRule for Fermi {
    fn fill_probs(&self, beta: f64, current: usize, utils: &[f64], probs: &mut Vec<f64>) {
        let m = utils.len();
        probs.clear();
        probs.resize(m, 0.0);
        let u_cur = utils[current];
        let mut stay = 0.0;
        for (s, &u) in utils.iter().enumerate() {
            if s == current {
                continue;
            }
            // 1/(1 + e^{-βΔ}) is safe at both extremes: e^{±∞} gives 0 or 1.
            let accept = 1.0 / (1.0 + (-(beta * (u - u_cur))).exp());
            let move_prob = accept / m as f64;
            probs[s] = move_prob;
            stay += move_prob;
        }
        probs[current] = 1.0 - stay;
    }

    fn name(&self) -> &'static str {
        "fermi"
    }
}

/// Imitate-the-better with mutation rate `ε`: propose a strategy uniformly
/// at random (the strategy of a sampled co-player, in the mean-field view)
/// and copy it **iff it strictly improves** the current payoff; with
/// probability `ε` mutate to a uniformly random strategy instead.
///
/// `β` is ignored — the payoff difference only enters through its sign, the
/// deterministic limit of the [`Fermi`] comparison. The induced chain is
/// ergodic for `ε > 0` but (like noisy best response) not reversible with
/// respect to the Gibbs measure; its stationary law comes from a linear
/// solve on the exact chain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImitateBetter {
    epsilon: f64,
}

impl ImitateBetter {
    /// Creates the rule with mutation rate `ε ∈ [0, 1]`.
    ///
    /// # Panics
    /// Panics when `ε` is outside `[0, 1]` or not finite. `ε = 0` (pure
    /// imitation) is allowed but absorbs at local optima on most games.
    pub fn new(epsilon: f64) -> Self {
        assert!((0.0..=1.0).contains(&epsilon), "epsilon must lie in [0, 1]");
        Self { epsilon }
    }

    /// The mutation rate `ε`.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }
}

impl Default for ImitateBetter {
    /// `ε = 0.1`, matching the conventional mutation rate of
    /// [`NoisyBestResponse`].
    fn default() -> Self {
        Self::new(0.1)
    }
}

impl UpdateRule for ImitateBetter {
    fn fill_probs(&self, _beta: f64, current: usize, utils: &[f64], probs: &mut Vec<f64>) {
        let m = utils.len();
        probs.clear();
        probs.resize(m, self.epsilon / m as f64);
        let u_cur = utils[current];
        // Proposing the current strategy (probability 1/m) always stays.
        let mut stay = (self.epsilon + (1.0 - self.epsilon)) / m as f64;
        for (s, &u) in utils.iter().enumerate() {
            if s == current {
                continue;
            }
            if u > u_cur {
                probs[s] += (1.0 - self.epsilon) / m as f64;
            } else {
                stay += (1.0 - self.epsilon) / m as f64;
            }
        }
        probs[current] = stay;
    }

    fn name(&self) -> &'static str {
        "imitate_better"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_distribution(probs: &[f64]) {
        assert!(probs.iter().all(|p| p.is_finite() && *p >= -1e-15));
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn logit_is_softmax() {
        let mut probs = Vec::new();
        Logit.fill_probs(1.0, 0, &[1.0, 0.0], &mut probs);
        let e = 1.0f64.exp();
        assert!((probs[0] - e / (e + 1.0)).abs() < 1e-12);
        assert_distribution(&probs);
        assert_eq!(Logit.name(), "logit");
    }

    #[test]
    fn logit_beta_zero_is_uniform() {
        let mut probs = Vec::new();
        Logit.fill_probs(0.0, 1, &[5.0, -3.0, 0.5], &mut probs);
        for p in &probs {
            assert!((p - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn metropolis_accepts_improvements_and_discounts_losses() {
        let mut probs = Vec::new();
        // current = 1 with utility 0; strategy 0 improves by 1, strategy 2 loses 1.
        MetropolisLogit.fill_probs(2.0, 1, &[1.0, 0.0, -1.0], &mut probs);
        assert!((probs[0] - 1.0 / 3.0).abs() < 1e-12, "improvement accepted");
        assert!((probs[2] - (-2.0f64).exp() / 3.0).abs() < 1e-12);
        assert!((probs[1] - (1.0 - probs[0] - probs[2])).abs() < 1e-12);
        assert_distribution(&probs);
    }

    #[test]
    fn metropolis_survives_huge_beta() {
        let mut probs = Vec::new();
        MetropolisLogit.fill_probs(1e9, 0, &[0.0, 1000.0, -1000.0], &mut probs);
        assert_distribution(&probs);
        assert!(
            (probs[1] - 1.0 / 3.0).abs() < 1e-12,
            "uphill proposal always accepted: proposal mass 1/m"
        );
        assert_eq!(probs[2], 0.0, "downhill proposal fully rejected");
    }

    #[test]
    fn metropolis_beta_zero_is_uniform() {
        let mut probs = Vec::new();
        MetropolisLogit.fill_probs(0.0, 2, &[3.0, -1.0, 0.0], &mut probs);
        for p in &probs {
            assert!((p - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn noisy_best_response_mixes_argmax_and_mutation() {
        let rule = NoisyBestResponse::new(0.3);
        let mut probs = Vec::new();
        rule.fill_probs(7.0, 0, &[0.0, 2.0, 1.0], &mut probs);
        assert!((probs[1] - (0.7 + 0.1)).abs() < 1e-12);
        assert!((probs[0] - 0.1).abs() < 1e-12);
        assert_distribution(&probs);
        assert_eq!(rule.epsilon(), 0.3);
    }

    #[test]
    fn noisy_best_response_splits_ties() {
        let rule = NoisyBestResponse::new(0.2);
        let mut probs = Vec::new();
        rule.fill_probs(1.0, 0, &[5.0, 5.0, 0.0], &mut probs);
        assert!((probs[0] - (0.4 + 0.2 / 3.0)).abs() < 1e-12);
        assert!((probs[1] - probs[0]).abs() < 1e-15);
        assert_distribution(&probs);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn noisy_best_response_rejects_bad_epsilon() {
        let _ = NoisyBestResponse::new(1.5);
    }

    #[test]
    fn rules_reuse_the_probs_buffer() {
        let mut probs = vec![9.0; 17];
        Logit.fill_probs(1.0, 0, &[0.0, 0.0], &mut probs);
        assert_eq!(probs.len(), 2);
        MetropolisLogit.fill_probs(1.0, 0, &[0.0, 0.0, 0.0], &mut probs);
        assert_eq!(probs.len(), 3);
        NoisyBestResponse::default().fill_probs(1.0, 0, &[0.0], &mut probs);
        assert_eq!(probs.len(), 1);
        assert!((probs[0] - 1.0).abs() < 1e-12);
        Fermi.fill_probs(1.0, 0, &[0.0, 0.0, 0.0, 0.0], &mut probs);
        assert_eq!(probs.len(), 4);
        ImitateBetter::default().fill_probs(1.0, 1, &[0.0, 0.0], &mut probs);
        assert_eq!(probs.len(), 2);
    }

    #[test]
    fn fermi_accepts_with_the_logistic_of_the_payoff_difference() {
        let mut probs = Vec::new();
        // current = 1 at utility 0; strategy 0 improves by 1, strategy 2 loses 1.
        Fermi.fill_probs(2.0, 1, &[1.0, 0.0, -1.0], &mut probs);
        let up = 1.0 / (1.0 + (-2.0f64).exp());
        let down = 1.0 / (1.0 + 2.0f64.exp());
        assert!((probs[0] - up / 3.0).abs() < 1e-12);
        assert!((probs[2] - down / 3.0).abs() < 1e-12);
        assert!((probs[1] - (1.0 - probs[0] - probs[2])).abs() < 1e-12);
        assert_distribution(&probs);
        // The detailed-balance ratio of the acceptances is e^{βΔ} (here
        // β = 2, Δ = 1), like the logit and Metropolis rules.
        assert!((up / down - 2.0f64.exp()).abs() < 1e-9);
        assert_eq!(Fermi.name(), "fermi");
    }

    #[test]
    fn fermi_moves_with_probability_half_on_ties_and_survives_huge_beta() {
        let mut probs = Vec::new();
        Fermi.fill_probs(5.0, 0, &[1.0, 1.0], &mut probs);
        assert!((probs[1] - 0.25).abs() < 1e-12, "tie accepted at rate 1/2");
        Fermi.fill_probs(1e9, 0, &[0.0, 1000.0, -1000.0], &mut probs);
        assert_distribution(&probs);
        assert!(
            (probs[1] - 1.0 / 3.0).abs() < 1e-12,
            "uphill fully accepted"
        );
        assert_eq!(probs[2], 0.0, "downhill fully rejected");
        // β = 0: every proposal accepted at rate 1/2.
        Fermi.fill_probs(0.0, 0, &[3.0, -1.0, 0.5], &mut probs);
        assert!((probs[1] - 0.5 / 3.0).abs() < 1e-12);
        assert!((probs[2] - 0.5 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn imitate_better_copies_strict_improvements_only() {
        let rule = ImitateBetter::new(0.3);
        let mut probs = Vec::new();
        // current = 0 at utility 1; strategy 1 improves, strategy 2 ties.
        rule.fill_probs(9.0, 0, &[1.0, 2.0, 1.0], &mut probs);
        assert!((probs[1] - (0.7 / 3.0 + 0.1)).abs() < 1e-12);
        assert!((probs[2] - 0.1).abs() < 1e-12, "ties are not copied");
        assert_distribution(&probs);
        assert_eq!(rule.epsilon(), 0.3);
        assert_eq!(rule.name(), "imitate_better");
        // Pure imitation at a local optimum stays put entirely.
        let pure = ImitateBetter::new(0.0);
        pure.fill_probs(1.0, 1, &[0.0, 5.0, 0.0], &mut probs);
        assert_eq!(probs, vec![0.0, 1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn imitate_better_rejects_bad_epsilon() {
        let _ = ImitateBetter::new(-0.1);
    }
}
