//! Trajectory and ensemble simulation of the revision dynamics — generic
//! over the update rule, with the paper's logit dynamics as the default.
//!
//! The exact analyses cap out around a few thousand profiles; beyond that the
//! behaviour of the dynamics is studied by simulation. This module provides
//!
//! * [`simulate_trajectory`] — a single trajectory of flat state indices,
//! * [`Simulator`] — reproducible parallel ensembles of independent replicas
//!   (rayon work-stealing over replicas, one deterministic ChaCha stream per
//!   replica so results do not depend on the number of worker threads). The
//!   flat-index entry point [`Simulator::run`] serves the exactly-analysable
//!   games; the in-place entry point [`Simulator::run_profiles`] serves
//!   large-`n` games whose profile space does not fit a flat index, streaming
//!   a [`ProfileObservable`](crate::observables::ProfileObservable) every `k`
//!   steps instead of touching final states only,
//! * [`EmpiricalLaw`] — the empirical distribution of an observable across
//!   replicas, the `|S|`-free replacement for the per-state empirical vector,
//! * empirical-distribution and observable tracking used by the experiments to
//!   compare the simulated law of `X_t` against the Gibbs measure.

use crate::dynamics::{DynamicsEngine, Scratch};
use crate::observables::ProfileObservable;
use crate::rules::UpdateRule;
use crate::schedules::SelectionSchedule;
use logit_games::Game;
use logit_linalg::stats::RunningStats;
use logit_linalg::Vector;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

/// Simulates a single trajectory of `steps` transitions starting from the flat
/// state index `start`, returning every visited state (including the start, so
/// the result has `steps + 1` entries).
pub fn simulate_trajectory<G: Game, U: UpdateRule, R: Rng + ?Sized>(
    dynamics: &DynamicsEngine<G, U>,
    start: usize,
    steps: u64,
    rng: &mut R,
) -> Vec<usize> {
    assert!(start < dynamics.num_states(), "start state out of range");
    let mut scratch = Scratch::for_game(dynamics.game());
    let mut out = Vec::with_capacity(steps as usize + 1);
    let mut state = start;
    out.push(state);
    for _ in 0..steps {
        state = dynamics.step_indexed(state, &mut scratch, rng);
        out.push(state);
    }
    out
}

/// Simulates a single in-place trajectory over profiles, calling `visit`
/// after every step. The large-`n` analogue of [`simulate_trajectory`]: no
/// flat indices, no per-step allocation, and the trajectory is not stored —
/// it is streamed through the callback.
pub fn simulate_profile_trajectory<G: Game, U: UpdateRule, R: Rng + ?Sized>(
    dynamics: &DynamicsEngine<G, U>,
    profile: &mut [usize],
    steps: u64,
    rng: &mut R,
    mut visit: impl FnMut(u64, &[usize], crate::dynamics::StepEvent),
) {
    validate_start_profile(dynamics.game(), profile);
    let mut scratch = Scratch::for_game(dynamics.game());
    for t in 1..=steps {
        let event = dynamics.step_profile(profile, &mut scratch, rng);
        visit(t, profile, event);
    }
}

pub(crate) fn validate_start_profile<G: Game>(game: &G, profile: &[usize]) {
    assert_eq!(
        profile.len(),
        game.num_players(),
        "start profile length must equal the player count"
    );
    for (i, &s) in profile.iter().enumerate() {
        assert!(
            s < game.num_strategies(i),
            "start strategy {s} out of range for player {i}"
        );
    }
}

/// The recorded-times grid every ensemble entry point samples on: multiples
/// of `sample_every` up to `steps`, plus the final step when it is not
/// already a multiple. Shared by the sequential and the pipelined runners so
/// both observe the identical grid.
pub(crate) fn sample_times(steps: u64, sample_every: u64) -> Vec<u64> {
    let mut times: Vec<u64> = (1..=steps / sample_every)
        .map(|k| k * sample_every)
        .collect();
    if times.last() != Some(&steps) {
        times.push(steps);
    }
    times
}

/// The deterministic per-replica stream seed shared by every ensemble entry
/// point, so the flat and profile engines can be compared replica-by-replica
/// (and so a `TemperingEnsemble` rung walks the same stream as the matching
/// `Simulator` replica).
pub(crate) fn replica_seed(seed: u64, replica: usize) -> u64 {
    seed ^ (replica as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// The master seed of tempering ensemble `e` in [`Simulator::run_tempered`].
///
/// Deliberately a *different* odd multiplier than [`replica_seed`]: the rung
/// streams of ensemble `e` are `replica_seed(ensemble_seed(seed, e), r)`, and
/// reusing the replica constant would make that expression symmetric in
/// `(e, r)` — ensemble 1's rung 0 would walk ensemble 0's rung 1 stream,
/// silently correlating "independent" ensembles.
pub(crate) fn ensemble_seed(seed: u64, ensemble: usize) -> u64 {
    seed ^ (ensemble as u64).wrapping_mul(0xD1B5_4A32_D192_ED03)
}

/// The empirical law of a scalar observable across replicas.
///
/// For games small enough to enumerate, the experiments compare the empirical
/// *state* distribution against the Gibbs measure; beyond `|S| ≈ usize::MAX`
/// no such vector exists, and the law of a scalar observable — potential,
/// magnetisation, adopter fraction — is what remains measurable and
/// comparable (e.g. across engines, or against theory).
#[derive(Debug, Clone)]
pub struct EmpiricalLaw {
    sorted: Vec<f64>,
}

/// Error returned by [`EmpiricalLaw::try_from_samples`] when no samples are
/// provided: an empirical law over zero replicas has no well-defined mean,
/// quantiles or CDF.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmptyLawError;

impl std::fmt::Display for EmptyLawError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "an empirical law needs at least one sample (zero replicas were provided)"
        )
    }
}

impl std::error::Error for EmptyLawError {}

impl EmpiricalLaw {
    /// Builds the law from observable samples (one per replica).
    ///
    /// # Panics
    /// Panics when `samples` is empty (use [`Self::try_from_samples`] for a
    /// recoverable error) or when any sample is NaN.
    pub fn from_samples(samples: Vec<f64>) -> Self {
        Self::try_from_samples(samples).expect("EmpiricalLaw::from_samples")
    }

    /// Fallible counterpart of [`Self::from_samples`]: returns
    /// [`EmptyLawError`] instead of panicking when `samples` is empty.
    ///
    /// # Panics
    /// Still panics when a sample is NaN — a NaN observable is a bug in the
    /// observable, not a recoverable runtime condition.
    pub fn try_from_samples(mut samples: Vec<f64>) -> Result<Self, EmptyLawError> {
        if samples.is_empty() {
            return Err(EmptyLawError);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("NaN observable sample"));
        Ok(Self { sorted: samples })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the law has no samples (never true for a constructed law).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// Smallest sample.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Largest sample.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("law is non-empty")
    }

    /// Empirical `q`-quantile (`0 ≤ q ≤ 1`), by the nearest-rank rule:
    /// the sample of rank `max(1, ⌈q·len⌉)`.
    ///
    /// Boundary behaviour (tested): `q = 0` returns the smallest sample
    /// ([`Self::min`]), `q = 1` returns the largest ([`Self::max`]), and a
    /// single-sample law returns its one sample for every `q`.
    ///
    /// # Panics
    /// Panics when `q` lies outside `[0, 1]` or is NaN.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile order must be in [0, 1]");
        let rank = ((q * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len());
        self.sorted[rank - 1]
    }

    /// Empirical CDF at `x`: the fraction of samples `≤ x`.
    pub fn cdf(&self, x: f64) -> f64 {
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Kolmogorov–Smirnov distance `sup_x |F(x) - G(x)|` to another law —
    /// the scalar-observable analogue of the total-variation comparisons the
    /// exact experiments run on state distributions.
    pub fn ks_distance(&self, other: &EmpiricalLaw) -> f64 {
        let mut best: f64 = 0.0;
        for &x in self.sorted.iter().chain(&other.sorted) {
            best = best.max((self.cdf(x) - other.cdf(x)).abs());
        }
        best
    }
}

/// Result of an ensemble run.
#[derive(Debug, Clone)]
pub struct EnsembleResult {
    /// Number of replicas simulated.
    pub replicas: usize,
    /// Number of steps each replica ran.
    pub steps: u64,
    /// Final state of every replica.
    pub final_states: Vec<usize>,
    /// Empirical distribution of the final states over the profile space.
    pub empirical: Vector,
    /// Running statistics of the observable evaluated at the final states
    /// (mean/variance/min/max across replicas).
    pub observable_stats: RunningStats,
}

impl EnsembleResult {
    /// Total variation distance between the empirical law of `X_t` and a
    /// reference distribution (typically the Gibbs measure).
    pub fn tv_to(&self, reference: &Vector) -> f64 {
        logit_markov::total_variation(&self.empirical, reference)
    }
}

/// Result of an in-place profile-ensemble run: a streamed time series of one
/// observable across replicas, plus its final-time empirical law.
#[derive(Debug, Clone)]
pub struct ProfileEnsembleResult {
    /// Number of replicas simulated.
    pub replicas: usize,
    /// Number of steps each replica ran.
    pub steps: u64,
    /// Sampling period of the streamed observable.
    pub sample_every: u64,
    /// Name of the observable.
    pub name: String,
    /// Recorded time steps (multiples of `sample_every`, plus `steps`).
    pub times: Vec<u64>,
    /// Statistics across replicas at each recorded step.
    pub series: Vec<RunningStats>,
    /// Observable value of every replica at the final step.
    pub final_values: Vec<f64>,
}

impl ProfileEnsembleResult {
    /// Mean of the observable across replicas at each recorded step.
    pub fn means(&self) -> Vec<f64> {
        self.series.iter().map(|s| s.mean()).collect()
    }

    /// The final-time empirical law of the observable across replicas.
    pub fn law(&self) -> EmpiricalLaw {
        EmpiricalLaw::from_samples(self.final_values.clone())
    }

    /// Statistics of the final observable values across replicas.
    pub fn final_stats(&self) -> RunningStats {
        let mut stats = RunningStats::new();
        for &v in &self.final_values {
            stats.push(v);
        }
        stats
    }

    /// Renders the streamed series as CSV (`t,mean,std_err,min,max`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("t,mean,std_err,min,max\n");
        for (t, s) in self.times.iter().zip(&self.series) {
            out.push_str(&format!(
                "{},{:.6},{:.6},{:.6},{:.6}\n",
                t,
                s.mean(),
                s.std_err(),
                s.min(),
                s.max()
            ));
        }
        out
    }
}

/// Result of a tempered ensemble run ([`Simulator::run_tempered`]): the
/// streamed time series of one observable evaluated on the **cold** replica
/// across independent tempering ensembles, plus the pooled swap diagnostics.
///
/// This is the tempering analogue of [`ProfileEnsembleResult`]: the cold
/// replica is the one whose law targets Gibbs at `β_cold`, so its observable
/// stream is what the experiments reduce — without any end-of-run barrier,
/// values are recorded as the rounds unfold.
#[derive(Debug, Clone)]
pub struct TemperedEnsembleResult {
    /// Number of independent tempering ensembles simulated.
    pub ensembles: usize,
    /// Replicas (β-rungs) per ensemble.
    pub replicas_per_ensemble: usize,
    /// Tempering rounds each ensemble ran.
    pub rounds: u64,
    /// Engine ticks per replica per round.
    pub sweep_ticks: u64,
    /// Name of the observable.
    pub name: String,
    /// Recorded times, in engine ticks per replica (round boundaries).
    pub times: Vec<u64>,
    /// Statistics of the cold-replica observable across ensembles at each
    /// recorded time.
    pub series: Vec<RunningStats>,
    /// Cold-replica observable of every ensemble at the final round.
    pub final_values: Vec<f64>,
    /// Swap diagnostics pooled over all ensembles.
    pub swap_stats: crate::tempering::SwapStats,
}

impl TemperedEnsembleResult {
    /// Mean of the cold-replica observable across ensembles at each recorded
    /// time.
    pub fn means(&self) -> Vec<f64> {
        self.series.iter().map(|s| s.mean()).collect()
    }

    /// The final-time empirical law of the cold-replica observable.
    pub fn law(&self) -> EmpiricalLaw {
        EmpiricalLaw::from_samples(self.final_values.clone())
    }

    /// Pooled swap acceptance rate of every adjacent ladder pair, hot to cold.
    pub fn swap_rates(&self) -> Vec<f64> {
        self.swap_stats.rates()
    }

    /// Total engine ticks spent per ensemble (all replicas summed).
    pub fn engine_ticks_per_ensemble(&self) -> u64 {
        self.rounds * self.sweep_ticks * self.replicas_per_ensemble as u64
    }
}

/// Reproducible parallel ensemble simulator.
///
/// Parallel execution (the pipelined farm, tempered runs) goes through one
/// persistent [`WorkerPool`](crate::runtime::WorkerPool) per simulator,
/// spawned lazily on the first parallel run and configured by the
/// simulator's [`RuntimeConfig`] — worker counts, wait policy and pinning
/// never affect results (the bit-identity contract), only throughput.
#[derive(Debug, Clone)]
pub struct Simulator {
    seed: u64,
    replicas: usize,
    runtime: crate::runtime::RuntimeConfig,
    pool: std::sync::OnceLock<std::sync::Arc<crate::runtime::WorkerPool>>,
}

impl Simulator {
    /// Creates a simulator with a master seed and a number of independent
    /// replicas. The parallel runtime is read from the environment
    /// ([`RuntimeConfig::from_env`](crate::runtime::RuntimeConfig::from_env):
    /// `LOGIT_WORKERS`, `LOGIT_WAIT_POLICY`, `LOGIT_PIN_CORES`,
    /// `LOGIT_MIN_CLASS_SIZE`), defaults when unset.
    pub fn new(seed: u64, replicas: usize) -> Self {
        Self::with_runtime(seed, replicas, crate::runtime::RuntimeConfig::from_env())
    }

    /// [`new`](Self::new) with an explicit parallel-runtime configuration.
    pub fn with_runtime(
        seed: u64,
        replicas: usize,
        runtime: crate::runtime::RuntimeConfig,
    ) -> Self {
        assert!(replicas > 0, "need at least one replica");
        Self {
            seed,
            replicas,
            runtime,
            pool: std::sync::OnceLock::new(),
        }
    }

    /// Number of replicas.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// The parallel-runtime configuration.
    pub fn runtime(&self) -> &crate::runtime::RuntimeConfig {
        &self.runtime
    }

    /// The simulator's persistent worker pool, spawned on first use and
    /// reused by every subsequent parallel run (cloned simulators share an
    /// already-spawned pool).
    pub fn pool(&self) -> &crate::runtime::WorkerPool {
        self.pool
            .get_or_init(|| std::sync::Arc::new(crate::runtime::WorkerPool::new(&self.runtime)))
    }

    /// The master seed replica streams are derived from (shared with the
    /// pipelined runner in [`crate::pipeline`]).
    pub(crate) fn master_seed(&self) -> u64 {
        self.seed
    }

    /// A simulator with its own master seed and replica count that shares
    /// this one's runtime configuration **and** its already-spawned worker
    /// pool — the per-job view a long-running service needs: every job gets
    /// independent, reproducible streams (`Simulator::new(seed, replicas)`
    /// replays them offline) while the pool threads are spawned exactly
    /// once for the process.
    pub fn reseeded(&self, seed: u64, replicas: usize) -> Simulator {
        assert!(replicas > 0, "need at least one replica");
        // Force the pool into existence first: cloning an empty OnceLock
        // would hand the job its own private pool.
        let _ = self.pool();
        Simulator {
            seed,
            replicas,
            runtime: self.runtime,
            pool: self.pool.clone(),
        }
    }

    /// Drives `ticks` coloured block ticks of `engine` — which must be
    /// built on the **relabelled** game of `layout` — from the
    /// original-label profile `start`, through the simulator's persistent
    /// pool and runtime configuration (cache-blocked byte sweeps, draws
    /// keyed by original player ids). Returns the final profile in
    /// original labels together with the total moved count; bit-identical
    /// to stepping the unrelabelled engine with
    /// [`DynamicsEngine::step_coloured`] from the same seed.
    pub fn run_coloured_locality<G, U>(
        &self,
        engine: &DynamicsEngine<G, U>,
        layout: &crate::locality::LocalityLayout,
        start: &[usize],
        ticks: u64,
    ) -> (Vec<usize>, usize)
    where
        G: logit_games::LocalGame + Sync,
        U: UpdateRule,
    {
        let mut bytes = Vec::new();
        layout.pack_profile(start, &mut bytes);
        let mut scratch = Scratch::for_game(engine.game());
        let mut moved = 0;
        for t in 0..ticks {
            moved += engine.step_coloured_pooled_bytes(
                layout.coloring(),
                t,
                self.seed,
                Some(layout.labels()),
                &mut bytes,
                &mut scratch,
                self.pool(),
                &self.runtime,
            );
        }
        let mut out = Vec::new();
        layout.unpack_profile(&bytes, &mut out);
        (out, moved)
    }

    /// Runs every replica for `steps` steps from `start` in parallel and
    /// evaluates `observable` on each final state.
    ///
    /// The observable is evaluated on the *flat index*; use
    /// `dynamics.space().profile_of(idx)` inside the closure when the profile
    /// itself is needed.
    pub fn run<G, U, F>(
        &self,
        dynamics: &DynamicsEngine<G, U>,
        start: usize,
        steps: u64,
        observable: F,
    ) -> EnsembleResult
    where
        G: Game + Sync,
        U: UpdateRule,
        F: Fn(usize) -> f64 + Sync,
    {
        assert!(start < dynamics.num_states(), "start state out of range");
        let final_states: Vec<usize> = (0..self.replicas)
            .into_par_iter()
            .map(|replica| {
                // Independent, reproducible stream per replica.
                let mut rng = ChaCha8Rng::seed_from_u64(replica_seed(self.seed, replica));
                let mut scratch = Scratch::for_game(dynamics.game());
                let mut state = start;
                for _ in 0..steps {
                    state = dynamics.step_indexed(state, &mut scratch, &mut rng);
                }
                state
            })
            .collect();

        let mut empirical = Vector::zeros(dynamics.num_states());
        let mut stats = RunningStats::new();
        for &s in &final_states {
            empirical[s] += 1.0;
            stats.push(observable(s));
        }
        empirical.scale(1.0 / self.replicas as f64);

        EnsembleResult {
            replicas: self.replicas,
            steps,
            final_states,
            empirical,
            observable_stats: stats,
        }
    }

    /// Runs every replica in place over strategy profiles — the large-`n`
    /// entry point. Each replica starts from a copy of `start`, steps
    /// `steps` times with its own deterministic ChaCha stream and reused
    /// [`Scratch`] buffers, and records `observable` every `sample_every`
    /// steps (plus at the final step), so the transient is observed as it
    /// unfolds instead of final states only.
    ///
    /// Never builds the flat profile space: games with `n = 10⁵`–`10⁶`
    /// players run fine. Replica streams use the same seed derivation as
    /// [`Self::run`], so on small games the two engines agree replica by
    /// replica.
    pub fn run_profiles<G, U, O>(
        &self,
        dynamics: &DynamicsEngine<G, U>,
        start: &[usize],
        steps: u64,
        sample_every: u64,
        observable: &O,
    ) -> ProfileEnsembleResult
    where
        G: Game + Sync,
        U: UpdateRule,
        O: ProfileObservable + Sync,
    {
        self.run_profiles_inner::<G, U, crate::schedules::UniformSingle, O>(
            dynamics,
            start,
            steps,
            sample_every,
            observable,
            None,
        )
    }

    /// [`Self::run_profiles`] under an arbitrary
    /// [`SelectionSchedule`](crate::schedules::SelectionSchedule): each step
    /// is one schedule *tick* (a single player for the sequential schedules,
    /// a whole block of `n` updates for the parallel all-logit schedule).
    pub fn run_profiles_scheduled<G, U, S, O>(
        &self,
        dynamics: &DynamicsEngine<G, U>,
        schedule: &S,
        start: &[usize],
        steps: u64,
        sample_every: u64,
        observable: &O,
    ) -> ProfileEnsembleResult
    where
        G: Game + Sync,
        U: UpdateRule,
        S: SelectionSchedule,
        O: ProfileObservable + Sync,
    {
        self.run_profiles_inner(
            dynamics,
            start,
            steps,
            sample_every,
            observable,
            Some(schedule),
        )
    }

    fn run_profiles_inner<G, U, S, O>(
        &self,
        dynamics: &DynamicsEngine<G, U>,
        start: &[usize],
        steps: u64,
        sample_every: u64,
        observable: &O,
        schedule: Option<&S>,
    ) -> ProfileEnsembleResult
    where
        G: Game + Sync,
        U: UpdateRule,
        S: SelectionSchedule,
        O: ProfileObservable + Sync,
    {
        validate_start_profile(dynamics.game(), start);
        assert!(steps >= 1, "need at least one step");
        assert!(sample_every >= 1, "sampling period must be at least 1");

        let times = sample_times(steps, sample_every);

        let per_replica: Vec<Vec<f64>> = (0..self.replicas)
            .into_par_iter()
            .map(|replica| {
                let mut rng = ChaCha8Rng::seed_from_u64(replica_seed(self.seed, replica));
                let mut scratch = Scratch::for_game(dynamics.game());
                let mut profile = start.to_vec();
                let mut values = Vec::with_capacity(times.len());
                let mut t = 0u64;
                for &target in &times {
                    while t < target {
                        match schedule {
                            // The default uniform single-player path keeps the
                            // dedicated (and bit-compatible) fast path.
                            None => {
                                dynamics.step_profile(&mut profile, &mut scratch, &mut rng);
                            }
                            Some(s) => {
                                dynamics.step_scheduled(s, t, &mut profile, &mut scratch, &mut rng);
                            }
                        }
                        t += 1;
                    }
                    values.push(observable.evaluate_profile(&profile));
                }
                values
            })
            .collect();

        let mut series = vec![RunningStats::new(); times.len()];
        for values in &per_replica {
            for (k, &v) in values.iter().enumerate() {
                series[k].push(v);
            }
        }
        let final_values: Vec<f64> = per_replica
            .iter()
            .map(|values| *values.last().expect("at least one recording time"))
            .collect();

        ProfileEnsembleResult {
            replicas: self.replicas,
            steps,
            sample_every,
            name: observable.name().to_string(),
            times,
            series,
            final_values,
        }
    }

    /// Runs independent replica-exchange ensembles in parallel — the
    /// tempering analogue of [`Self::run_profiles_scheduled`].
    ///
    /// Each of the simulator's `replicas` entries becomes one *tempering
    /// ensemble* (a full β-ladder of `ensemble.num_replicas()` chains) with
    /// its own deterministic stream family derived from the master seed. Every
    /// ensemble starts all rungs from a copy of `start`, runs `rounds`
    /// tempering rounds of `sweep_ticks` ticks each under `schedule`, and
    /// `observable` is evaluated on the **cold** replica's profile every
    /// `sample_every` rounds (plus at the final round). Swap diagnostics are
    /// pooled across ensembles.
    ///
    /// Routed through the same farm/reducer stages as the pipelined profile
    /// runner ([`crate::pipeline`]): ensemble workers push cold-replica
    /// snapshots through a bounded channel as the rounds unfold, and a
    /// dedicated reducer evaluates the observable and folds statistics off
    /// the sweeping threads — streamed, no end-of-run barrier. Uses the
    /// default [`crate::pipeline::PipelineConfig`]; pass explicit knobs
    /// through [`Self::run_tempered_with`] when the defaults don't fit
    /// (dense sampling on very large games pays one `O(n)` cold-profile
    /// snapshot per sample round per ensemble, bounded by the channel
    /// capacity).
    #[allow(clippy::too_many_arguments)]
    pub fn run_tempered<G, U, S, O>(
        &self,
        ensemble: &crate::tempering::TemperingEnsemble<G, U>,
        schedule: &S,
        start: &[usize],
        rounds: u64,
        sweep_ticks: u64,
        sample_every: u64,
        observable: &O,
    ) -> TemperedEnsembleResult
    where
        G: logit_games::PotentialGame + Send + Sync,
        U: UpdateRule,
        S: SelectionSchedule,
        O: ProfileObservable + Sync,
    {
        self.run_tempered_with(
            ensemble,
            schedule,
            start,
            rounds,
            sweep_ticks,
            sample_every,
            observable,
            &crate::pipeline::PipelineConfig::default(),
        )
    }

    /// [`Self::run_tempered`] with explicit
    /// [`PipelineConfig`](crate::pipeline::PipelineConfig) knobs (channel
    /// capacity, channel backend and reducer mode; `chunk_ticks` and
    /// `adaptive` have no effect here — the tempering round structure
    /// already chunks the stream at sample rounds; the worker count comes
    /// from the simulator's
    /// [`RuntimeConfig`](crate::runtime::RuntimeConfig)). In the default
    /// ordered mode the knobs affect throughput and memory only, never the
    /// result; the opt-in unordered reducer keeps counts/min/max/finals
    /// exact and relaxes only the fold order of the moments.
    #[allow(clippy::too_many_arguments)]
    pub fn run_tempered_with<G, U, S, O>(
        &self,
        ensemble: &crate::tempering::TemperingEnsemble<G, U>,
        schedule: &S,
        start: &[usize],
        rounds: u64,
        sweep_ticks: u64,
        sample_every: u64,
        observable: &O,
        config: &crate::pipeline::PipelineConfig,
    ) -> TemperedEnsembleResult
    where
        G: logit_games::PotentialGame + Send + Sync,
        U: UpdateRule,
        S: SelectionSchedule,
        O: ProfileObservable + Sync,
    {
        use crate::observables::SeriesAccumulator;
        use crate::pipeline::{farm, FarmSender, OrderedSeriesReducer, ReducerMode, SnapshotBatch};

        assert!(rounds >= 1, "need at least one round");
        assert!(sweep_ticks >= 1, "need at least one tick per round");
        assert!(
            sample_every >= 1,
            "sampling period must be at least 1 round"
        );
        config.validate();

        let sample_rounds = sample_times(rounds, sample_every);
        let sample_rounds_ref = &sample_rounds;
        let workers = self.runtime.farm_workers(self.replicas);

        // Cold-replica snapshots stream through the shared stage type; the
        // swap diagnostics ride behind them once per ensemble.
        enum TemperMsg {
            Batch(SnapshotBatch),
            Stats {
                ensemble: usize,
                stats: crate::tempering::SwapStats,
            },
        }

        let worker = |e: usize, tx: &FarmSender<TemperMsg>| {
            let mut state = ensemble.init_state(start, ensemble_seed(self.seed, e));
            let mut r = 0u64;
            for (k, &target) in sample_rounds_ref.iter().enumerate() {
                while r < target {
                    ensemble.round(schedule, &mut state, sweep_ticks);
                    r += 1;
                }
                let send = tx.send(TemperMsg::Batch(SnapshotBatch {
                    replica: e,
                    first_sample: k,
                    profiles: vec![state.cold_profile().to_vec()],
                }));
                if send.is_err() {
                    // The reducer died; stop sweeping, let its panic
                    // surface through the farm.
                    return false;
                }
            }
            tx.send(TemperMsg::Stats {
                ensemble: e,
                stats: state.swap_stats().clone(),
            })
            .is_ok()
        };

        let reducer_mode = config.reducer;
        let (acc, per_ensemble_stats) = farm(
            self.pool(),
            config.backend,
            self.replicas,
            workers,
            config.channel_capacity,
            worker,
            |rx| {
                let mut stats: Vec<Option<crate::tempering::SwapStats>> = vec![None; self.replicas];
                match reducer_mode {
                    ReducerMode::Ordered => {
                        let mut reducer =
                            OrderedSeriesReducer::new(sample_rounds_ref.len(), self.replicas);
                        for msg in rx {
                            match msg {
                                TemperMsg::Batch(batch) => {
                                    for (j, snapshot) in batch.profiles.iter().enumerate() {
                                        reducer.offer(
                                            batch.first_sample + j,
                                            batch.replica,
                                            observable.evaluate_profile(snapshot),
                                        );
                                    }
                                }
                                TemperMsg::Stats { ensemble, stats: s } => {
                                    stats[ensemble] = Some(s);
                                }
                            }
                        }
                        (reducer.finish(), stats)
                    }
                    ReducerMode::Unordered => {
                        // Merge-on-arrival, same contract as the profile
                        // runner: exact counts/min/max/finals, moments to
                        // fp rounding of the arrival-order fold.
                        let mut acc = SeriesAccumulator::new(sample_rounds_ref.len());
                        for msg in rx {
                            match msg {
                                TemperMsg::Batch(batch) => {
                                    let mut part = SeriesAccumulator::new(sample_rounds_ref.len());
                                    for (j, snapshot) in batch.profiles.iter().enumerate() {
                                        part.record(
                                            batch.first_sample + j,
                                            batch.replica,
                                            observable.evaluate_profile(snapshot),
                                        );
                                    }
                                    acc.merge(part);
                                }
                                TemperMsg::Stats { ensemble, stats: s } => {
                                    stats[ensemble] = Some(s);
                                }
                            }
                        }
                        assert!(
                            acc.series()
                                .iter()
                                .all(|s| s.count() == self.replicas as u64),
                            "reduction is incomplete: not every ensemble reported every sample"
                        );
                        (acc, stats)
                    }
                }
            },
        );

        let (series, final_values) = acc.into_series_and_finals();
        let mut swap_stats =
            crate::tempering::SwapStats::new(ensemble.num_replicas().saturating_sub(1));
        for stats in per_ensemble_stats {
            swap_stats.merge(&stats.expect("every ensemble reports swap stats"));
        }

        TemperedEnsembleResult {
            ensembles: self.replicas,
            replicas_per_ensemble: ensemble.num_replicas(),
            rounds,
            sweep_ticks,
            name: observable.name().to_string(),
            times: sample_rounds.iter().map(|&r| r * sweep_ticks).collect(),
            series,
            final_values,
            swap_stats,
        }
    }

    /// Convenience: runs the ensemble and reports the total variation distance of
    /// the empirical final-state distribution to `reference` (e.g. the Gibbs
    /// measure), without needing an observable.
    pub fn tv_distance_after<G: Game + Sync, U: UpdateRule>(
        &self,
        dynamics: &DynamicsEngine<G, U>,
        start: usize,
        steps: u64,
        reference: &Vector,
    ) -> f64 {
        self.run(dynamics, start, steps, |_| 0.0).tv_to(reference)
    }

    /// Estimates the time at which the empirical distribution first comes within
    /// `target_tv + sampling slack` of the reference by doubling the horizon.
    /// Returns `(steps, tv)` for the first horizon that met the target, or `None`
    /// if `max_steps` was reached first.
    ///
    /// This is a *statistical estimate* of the mixing time (it under-resolves TV
    /// distances below the sampling noise `~sqrt(|S|/replicas)`), used only where
    /// exact computation is infeasible.
    pub fn estimate_mixing_by_doubling<G: Game + Sync, U: UpdateRule>(
        &self,
        dynamics: &DynamicsEngine<G, U>,
        start: usize,
        reference: &Vector,
        target_tv: f64,
        max_steps: u64,
    ) -> Option<(u64, f64)> {
        let mut steps = 1u64;
        loop {
            let tv = self.tv_distance_after(dynamics, start, steps, reference);
            if tv <= target_tv {
                return Some((steps, tv));
            }
            if steps >= max_steps {
                return None;
            }
            steps = (steps * 2).min(max_steps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::LogitDynamics;
    use crate::gibbs::gibbs_distribution;
    use logit_games::{CoordinationGame, GraphicalCoordinationGame, PotentialGame, WellGame};
    use logit_graphs::GraphBuilder;
    use rand::rngs::StdRng;

    #[test]
    fn trajectory_has_expected_length_and_valid_states() {
        let game = WellGame::plateau(4, 1.0);
        let d = LogitDynamics::new(game, 0.5);
        let mut rng = StdRng::seed_from_u64(1);
        let traj = simulate_trajectory(&d, 0, 100, &mut rng);
        assert_eq!(traj.len(), 101);
        assert!(traj.iter().all(|&s| s < d.num_states()));
    }

    #[test]
    fn ensemble_is_reproducible_and_thread_count_independent() {
        let game = WellGame::plateau(4, 1.0);
        let d = LogitDynamics::new(game, 0.8);
        let sim = Simulator::new(123, 64);
        let a = sim.run(&d, 0, 50, |s| s as f64);
        let b = sim.run(&d, 0, 50, |s| s as f64);
        assert_eq!(a.final_states, b.final_states);
        assert_eq!(a.observable_stats.mean(), b.observable_stats.mean());
    }

    #[test]
    fn empirical_distribution_sums_to_one() {
        let game = WellGame::plateau(3, 1.0);
        let d = LogitDynamics::new(game, 0.3);
        let sim = Simulator::new(5, 200);
        let result = sim.run(&d, 0, 30, |_| 1.0);
        assert!(result.empirical.is_distribution(1e-9));
        assert_eq!(result.final_states.len(), 200);
        assert_eq!(result.observable_stats.count(), 200);
    }

    #[test]
    fn long_runs_approach_the_gibbs_measure() {
        // Small game, moderate beta: after many steps the ensemble law should be
        // close to Gibbs (within sampling noise).
        let game =
            GraphicalCoordinationGame::new(GraphBuilder::ring(3), CoordinationGame::symmetric(1.0));
        let beta = 0.7;
        let d = LogitDynamics::new(game.clone(), beta);
        let pi = gibbs_distribution(&game, beta);
        let sim = Simulator::new(42, 4000);
        let tv = sim.tv_distance_after(&d, 0, 400, &pi);
        assert!(tv < 0.08, "ensemble law should approach Gibbs, tv = {tv}");
    }

    #[test]
    fn observable_tracks_potential() {
        let game = WellGame::plateau(4, 2.0);
        let beta = 3.0;
        let d = LogitDynamics::new(game.clone(), beta);
        let space = d.space().clone();
        let sim = Simulator::new(7, 500);
        let result = sim.run(&d, 0, 300, |idx| game.potential(&space.profile_of(idx)));
        // At beta = 3 the chain should mostly sit in the wells (potential -2).
        assert!(result.observable_stats.mean() < -1.0);
    }

    #[test]
    fn doubling_estimator_finds_fast_mixing() {
        let game = WellGame::plateau(3, 0.5);
        let beta = 0.2;
        let d = LogitDynamics::new(game.clone(), beta);
        let pi = gibbs_distribution(&game, beta);
        let sim = Simulator::new(11, 3000);
        let found = sim.estimate_mixing_by_doubling(&d, 0, &pi, 0.12, 4096);
        let (steps, tv) = found.expect("a tiny game at low beta mixes quickly");
        assert!(steps <= 4096);
        assert!(tv <= 0.12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_start_state_rejected() {
        let game = WellGame::plateau(3, 1.0);
        let d = LogitDynamics::new(game, 1.0);
        let sim = Simulator::new(1, 10);
        let _ = sim.run(&d, 1000, 10, |_| 0.0);
    }

    #[test]
    fn profile_ensemble_matches_flat_ensemble_replica_by_replica() {
        use crate::observables::PotentialObservable;
        let game = GraphicalCoordinationGame::new(
            GraphBuilder::ring(4),
            CoordinationGame::from_deltas(2.0, 1.0),
        );
        let d = LogitDynamics::new(game.clone(), 0.9);
        let space = d.space().clone();
        let sim = Simulator::new(77, 48);

        let flat = sim.run(&d, 0, 60, |idx| game.potential(&space.profile_of(idx)));
        let obs = PotentialObservable::new(game.clone());
        let prof = sim.run_profiles(&d, &[0, 0, 0, 0], 60, 60, &obs);

        // Same seeds, same update rule, same draw order: the final observable
        // values agree exactly, replica by replica.
        let flat_finals: Vec<f64> = flat
            .final_states
            .iter()
            .map(|&idx| game.potential(&space.profile_of(idx)))
            .collect();
        assert_eq!(flat_finals, prof.final_values);
    }

    #[test]
    fn streaming_series_has_expected_schedule() {
        use crate::observables::StrategyFraction;
        let game = GraphicalCoordinationGame::new(
            GraphBuilder::ring(6),
            CoordinationGame::from_deltas(1.0, 2.0),
        );
        let d = LogitDynamics::new(game, 1.2);
        let sim = Simulator::new(3, 100);
        let obs = StrategyFraction::new(1, "adopters");
        let result = sim.run_profiles(&d, &[0; 6], 205, 50, &obs);
        // Samples at 50, 100, 150, 200 plus the final step 205.
        assert_eq!(result.times, vec![50, 100, 150, 200, 205]);
        assert_eq!(result.series.len(), 5);
        assert!(result.series.iter().all(|s| s.count() == 100));
        assert_eq!(result.final_values.len(), 100);
        let csv = result.to_csv();
        assert_eq!(csv.lines().count(), 6);
        // Risk-dominant strategy 1 gains adopters over time.
        let means = result.means();
        assert!(means[4] > means[0]);
    }

    #[test]
    fn profile_ensemble_runs_beyond_flat_index_capacity() {
        use crate::observables::StrategyFraction;
        // 500 binary players: |S| = 2^500 has no flat index, the profile
        // ensemble does not care.
        let game = GraphicalCoordinationGame::new(
            GraphBuilder::ring(500),
            CoordinationGame::from_deltas(3.0, 1.0),
        );
        let d = LogitDynamics::new(game, 2.0);
        let sim = Simulator::new(9, 8);
        let obs = StrategyFraction::new(0, "zeros");
        let result = sim.run_profiles(&d, &vec![1usize; 500], 20_000, 5_000, &obs);
        assert_eq!(result.final_values.len(), 8);
        // Strategy 0 is risk dominant; from all-ones, zeros should spread.
        assert!(
            result.law().mean() > 0.2,
            "zeros fraction = {}",
            result.law().mean()
        );
    }

    #[test]
    fn empirical_law_statistics() {
        let law = EmpiricalLaw::from_samples(vec![3.0, 1.0, 2.0, 4.0]);
        assert_eq!(law.len(), 4);
        assert_eq!(law.min(), 1.0);
        assert_eq!(law.max(), 4.0);
        assert_eq!(law.mean(), 2.5);
        assert_eq!(law.quantile(0.5), 2.0);
        assert_eq!(law.quantile(1.0), 4.0);
        assert_eq!(law.cdf(2.5), 0.5);
        assert_eq!(law.cdf(0.0), 0.0);
        assert_eq!(law.cdf(9.0), 1.0);
        let same = EmpiricalLaw::from_samples(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(law.ks_distance(&same), 0.0);
        let shifted = EmpiricalLaw::from_samples(vec![11.0, 12.0, 13.0, 14.0]);
        assert_eq!(law.ks_distance(&shifted), 1.0);
    }

    #[test]
    fn empirical_law_quantile_boundaries() {
        let law = EmpiricalLaw::from_samples(vec![3.0, 1.0, 2.0, 4.0]);
        // q = 0 is the smallest sample, q = 1 the largest (nearest-rank rule).
        assert_eq!(law.quantile(0.0), law.min());
        assert_eq!(law.quantile(0.0), 1.0);
        assert_eq!(law.quantile(1.0), law.max());
        assert_eq!(law.quantile(1.0), 4.0);
        // A single-sample law returns its one sample for every q.
        let single = EmpiricalLaw::from_samples(vec![7.5]);
        for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
            assert_eq!(single.quantile(q), 7.5);
        }
        assert_eq!(single.min(), 7.5);
        assert_eq!(single.max(), 7.5);
        assert_eq!(single.mean(), 7.5);
    }

    #[test]
    fn empirical_cdf_handles_duplicate_samples() {
        // Duplicates make the CDF jump by more than 1/len at one point; the
        // partition_point-based count must include every tied sample.
        let law = EmpiricalLaw::from_samples(vec![1.0, 1.0, 1.0, 2.0]);
        assert_eq!(law.cdf(0.999), 0.0);
        assert_eq!(law.cdf(1.0), 0.75);
        assert_eq!(law.cdf(1.5), 0.75);
        assert_eq!(law.cdf(2.0), 1.0);
        // Nearest-rank quantiles step through the tie as one block.
        assert_eq!(law.quantile(0.5), 1.0);
        assert_eq!(law.quantile(0.75), 1.0);
        assert_eq!(law.quantile(0.76), 2.0);
    }

    #[test]
    fn ks_distance_with_duplicates_and_partial_overlap() {
        // F = law of {1,1,2}, G = law of {1,2,2}: the sup gap sits at x = 1
        // (2/3 vs 1/3) and closes again at x = 2.
        let f = EmpiricalLaw::from_samples(vec![1.0, 1.0, 2.0]);
        let g = EmpiricalLaw::from_samples(vec![2.0, 1.0, 2.0]);
        assert!((f.ks_distance(&g) - 1.0 / 3.0).abs() < 1e-15);
        // Symmetric.
        assert_eq!(f.ks_distance(&g), g.ks_distance(&f));
        // Unequal sample counts: {1,2} vs {1,2,3} peaks at x = 2 (1 vs 2/3).
        let two = EmpiricalLaw::from_samples(vec![1.0, 2.0]);
        let three = EmpiricalLaw::from_samples(vec![1.0, 2.0, 3.0]);
        assert!((two.ks_distance(&three) - 1.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    fn ks_distance_of_single_sample_laws() {
        // Degenerate laws: distance 0 when the atoms coincide, 1 when they
        // are disjoint (the CDFs are step functions at the atoms).
        let a = EmpiricalLaw::from_samples(vec![5.0]);
        let b = EmpiricalLaw::from_samples(vec![5.0]);
        let c = EmpiricalLaw::from_samples(vec![6.0]);
        assert_eq!(a.ks_distance(&b), 0.0);
        assert_eq!(a.ks_distance(&c), 1.0);
        assert_eq!(c.ks_distance(&a), 1.0);
        // A single atom against a spread law: sup gap at the atom.
        let spread = EmpiricalLaw::from_samples(vec![4.0, 5.0, 6.0, 7.0]);
        assert_eq!(a.cdf(5.0), 1.0);
        assert_eq!(spread.cdf(5.0), 0.5);
        assert_eq!(a.ks_distance(&spread), 0.5);
        // KS distance is always within [0, 1].
        assert!(a.ks_distance(&spread) <= 1.0);
    }

    #[test]
    fn empty_laws_cannot_reach_cdf_or_ks() {
        // The empty-vs-nonempty guard: the constructors are the only way to
        // build a law and both refuse zero samples, so `cdf`/`ks_distance`
        // can never divide by a zero sample count.
        assert_eq!(
            EmpiricalLaw::try_from_samples(Vec::new()).unwrap_err(),
            EmptyLawError
        );
        let law = EmpiricalLaw::try_from_samples(vec![2.0]).expect("one sample suffices");
        assert!(!law.is_empty());
        assert_eq!(law.len(), 1);
        assert_eq!(law.cdf(1.9), 0.0);
        assert_eq!(law.cdf(2.0), 1.0);
        assert_eq!(law.ks_distance(&law), 0.0);
    }

    #[test]
    fn empty_samples_are_a_recoverable_error() {
        let err = EmpiricalLaw::try_from_samples(Vec::new()).unwrap_err();
        assert_eq!(err, EmptyLawError);
        assert!(err.to_string().contains("at least one sample"));
        assert!(EmpiricalLaw::try_from_samples(vec![1.0]).is_ok());
    }

    #[test]
    #[should_panic(expected = "EmpiricalLaw::from_samples")]
    fn empty_samples_panic_through_the_infallible_constructor() {
        let _ = EmpiricalLaw::from_samples(Vec::new());
    }

    #[test]
    #[should_panic(expected = "quantile order")]
    fn out_of_range_quantile_rejected() {
        let law = EmpiricalLaw::from_samples(vec![1.0, 2.0]);
        let _ = law.quantile(1.5);
    }

    #[test]
    fn scheduled_ensemble_with_uniform_single_matches_the_default_path() {
        use crate::observables::PotentialObservable;
        use crate::schedules::UniformSingle;
        let game = GraphicalCoordinationGame::new(
            GraphBuilder::ring(4),
            CoordinationGame::from_deltas(2.0, 1.0),
        );
        let d = LogitDynamics::new(game.clone(), 0.9);
        let sim = Simulator::new(21, 32);
        let obs = PotentialObservable::new(game);
        let default = sim.run_profiles(&d, &[0, 0, 0, 0], 50, 10, &obs);
        let scheduled = sim.run_profiles_scheduled(&d, &UniformSingle, &[0, 0, 0, 0], 50, 10, &obs);
        assert_eq!(default.final_values, scheduled.final_values);
        assert_eq!(default.times, scheduled.times);
    }

    #[test]
    fn all_logit_ensemble_runs_at_large_n() {
        use crate::observables::StrategyFraction;
        use crate::schedules::AllLogit;
        // 300 binary players, parallel block updates: one tick = 300 player
        // updates, far beyond any flat index.
        let game = GraphicalCoordinationGame::new(
            GraphBuilder::ring(300),
            CoordinationGame::from_deltas(3.0, 1.0),
        );
        let d = LogitDynamics::new(game, 2.0);
        let sim = Simulator::new(13, 6);
        let obs = StrategyFraction::new(0, "zeros");
        let result = sim.run_profiles_scheduled(&d, &AllLogit, &vec![1usize; 300], 200, 50, &obs);
        assert_eq!(result.final_values.len(), 6);
        // Strategy 0 is risk dominant; 200 block ticks = 60000 updates should
        // flip a clear majority.
        assert!(
            result.law().mean() > 0.5,
            "zeros fraction = {}",
            result.law().mean()
        );
    }

    #[test]
    fn metropolis_ensemble_approaches_gibbs() {
        use crate::rules::MetropolisLogit;
        use crate::DynamicsEngine;
        let game =
            GraphicalCoordinationGame::new(GraphBuilder::ring(3), CoordinationGame::symmetric(1.0));
        let beta = 0.7;
        let d = DynamicsEngine::with_rule(game.clone(), MetropolisLogit, beta);
        let pi = gibbs_distribution(&game, beta);
        let sim = Simulator::new(42, 4000);
        let tv = sim.tv_distance_after(&d, 0, 600, &pi);
        assert!(
            tv < 0.08,
            "Metropolis ensemble law should approach Gibbs, tv = {tv}"
        );
    }

    #[test]
    fn profile_trajectory_streams_every_step() {
        let game = WellGame::plateau(5, 1.5);
        let d = LogitDynamics::new(game, 0.8);
        let mut rng = StdRng::seed_from_u64(4);
        let mut profile = vec![0usize; 5];
        let mut visits = 0u64;
        simulate_profile_trajectory(&d, &mut profile, 250, &mut rng, |t, p, event| {
            visits += 1;
            assert_eq!(t, visits);
            assert_eq!(p.len(), 5);
            assert_eq!(p[event.player], event.new_strategy);
        });
        assert_eq!(visits, 250);
    }

    #[test]
    fn ensemble_and_rung_seed_derivations_never_collide() {
        // The composed rung stream seed (e, r) -> replica_seed(ensemble_seed(s, e), r)
        // must be injective: with a shared multiplier it would be symmetric in
        // (e, r) and "independent" ensembles would walk each other's streams.
        let seed = 0xDEAD_BEEF_u64;
        let mut seen = std::collections::HashSet::new();
        for e in 0..16 {
            for r in 0..16 {
                assert!(
                    seen.insert(replica_seed(ensemble_seed(seed, e), r)),
                    "rung stream seed collision at ensemble {e}, rung {r}"
                );
            }
        }
    }

    #[test]
    fn tempered_ensembles_stream_the_cold_replica_and_pool_swap_stats() {
        use crate::observables::PotentialObservable;
        use crate::schedules::UniformSingle;
        use crate::tempering::TemperingEnsemble;
        let game = WellGame::plateau(4, 2.0);
        let ensemble = TemperingEnsemble::new(game.clone(), crate::rules::Logit, &[0.4, 1.2, 2.4]);
        let sim = Simulator::new(31, 24);
        let obs = PotentialObservable::new(game);
        let result = sim.run_tempered(&ensemble, &UniformSingle, &[0; 4], 25, 4, 10, &obs);
        assert_eq!(result.ensembles, 24);
        assert_eq!(result.replicas_per_ensemble, 3);
        // Samples at rounds 10, 20 plus the final round 25, in engine ticks.
        assert_eq!(result.times, vec![40, 80, 100]);
        assert_eq!(result.series.len(), 3);
        assert!(result.series.iter().all(|s| s.count() == 24));
        assert_eq!(result.final_values.len(), 24);
        assert_eq!(result.engine_ticks_per_ensemble(), 25 * 4 * 3);
        // Every ensemble attempted every pair once per round.
        assert_eq!(result.swap_stats.attempts(0), 24 * 25);
        assert_eq!(result.swap_stats.attempts(1), 24 * 25);
        assert_eq!(result.swap_rates().len(), 2);
        // Reproducible: same seed, same everything.
        let again = sim.run_tempered(&ensemble, &UniformSingle, &[0; 4], 25, 4, 10, &obs);
        assert_eq!(result.final_values, again.final_values);
        assert_eq!(result.swap_stats, again.swap_stats);
    }

    #[test]
    fn tempered_cold_replica_law_tracks_gibbs_potential() {
        use crate::observables::PotentialObservable;
        use crate::schedules::UniformSingle;
        use crate::tempering::TemperingEnsemble;
        let game = WellGame::plateau(4, 2.0);
        let beta_cold = 2.0;
        let ensemble =
            TemperingEnsemble::new(game.clone(), crate::rules::Logit, &[0.3, 1.0, beta_cold]);
        let sim = Simulator::new(8, 400);
        let obs = PotentialObservable::new(game.clone());
        let result = sim.run_tempered(&ensemble, &UniformSingle, &[0; 4], 150, 4, 150, &obs);
        let expected = crate::gibbs::expected_potential(&game, beta_cold);
        let mean = result.law().mean();
        assert!(
            (mean - expected).abs() < 0.1,
            "cold-replica mean potential {mean} should approach the Gibbs expectation {expected}"
        );
    }

    #[test]
    #[should_panic(expected = "length must equal")]
    fn wrong_profile_length_rejected() {
        use crate::observables::StrategyFraction;
        let game = WellGame::plateau(4, 1.0);
        let d = LogitDynamics::new(game, 1.0);
        let sim = Simulator::new(1, 4);
        let obs = StrategyFraction::new(0, "zeros");
        let _ = sim.run_profiles(&d, &[0, 0], 10, 5, &obs);
    }
}
