//! Trajectory and ensemble simulation of the logit dynamics.
//!
//! The exact analyses cap out around a few thousand profiles; beyond that the
//! behaviour of the dynamics is studied by simulation. This module provides
//!
//! * [`simulate_trajectory`] — a single trajectory of flat state indices,
//! * [`Simulator`] — reproducible parallel ensembles of independent replicas
//!   (rayon work-stealing over replicas, one deterministic ChaCha stream per
//!   replica so results do not depend on the number of worker threads),
//! * empirical-distribution and observable tracking used by the experiments to
//!   compare the simulated law of `X_t` against the Gibbs measure.

use crate::dynamics::LogitDynamics;
use logit_games::Game;
use logit_linalg::stats::RunningStats;
use logit_linalg::Vector;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

/// Simulates a single trajectory of `steps` transitions starting from the flat
/// state index `start`, returning every visited state (including the start, so
/// the result has `steps + 1` entries).
pub fn simulate_trajectory<G: Game, R: Rng + ?Sized>(
    dynamics: &LogitDynamics<G>,
    start: usize,
    steps: u64,
    rng: &mut R,
) -> Vec<usize> {
    assert!(start < dynamics.num_states(), "start state out of range");
    let mut out = Vec::with_capacity(steps as usize + 1);
    let mut state = start;
    out.push(state);
    for _ in 0..steps {
        state = dynamics.step(state, rng);
        out.push(state);
    }
    out
}

/// Result of an ensemble run.
#[derive(Debug, Clone)]
pub struct EnsembleResult {
    /// Number of replicas simulated.
    pub replicas: usize,
    /// Number of steps each replica ran.
    pub steps: u64,
    /// Final state of every replica.
    pub final_states: Vec<usize>,
    /// Empirical distribution of the final states over the profile space.
    pub empirical: Vector,
    /// Running statistics of the observable evaluated at the final states
    /// (mean/variance/min/max across replicas).
    pub observable_stats: RunningStats,
}

impl EnsembleResult {
    /// Total variation distance between the empirical law of `X_t` and a
    /// reference distribution (typically the Gibbs measure).
    pub fn tv_to(&self, reference: &Vector) -> f64 {
        logit_markov::total_variation(&self.empirical, reference)
    }
}

/// Reproducible parallel ensemble simulator.
#[derive(Debug, Clone)]
pub struct Simulator {
    seed: u64,
    replicas: usize,
}

impl Simulator {
    /// Creates a simulator with a master seed and a number of independent replicas.
    pub fn new(seed: u64, replicas: usize) -> Self {
        assert!(replicas > 0, "need at least one replica");
        Self { seed, replicas }
    }

    /// Number of replicas.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// Runs every replica for `steps` steps from `start` in parallel and
    /// evaluates `observable` on each final state.
    ///
    /// The observable is evaluated on the *flat index*; use
    /// `dynamics.space().profile_of(idx)` inside the closure when the profile
    /// itself is needed.
    pub fn run<G, F>(
        &self,
        dynamics: &LogitDynamics<G>,
        start: usize,
        steps: u64,
        observable: F,
    ) -> EnsembleResult
    where
        G: Game + Sync,
        F: Fn(usize) -> f64 + Sync,
    {
        assert!(start < dynamics.num_states(), "start state out of range");
        let final_states: Vec<usize> = (0..self.replicas)
            .into_par_iter()
            .map(|replica| {
                // Independent, reproducible stream per replica.
                let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ (replica as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                let mut state = start;
                for _ in 0..steps {
                    state = dynamics.step(state, &mut rng);
                }
                state
            })
            .collect();

        let mut empirical = Vector::zeros(dynamics.num_states());
        let mut stats = RunningStats::new();
        for &s in &final_states {
            empirical[s] += 1.0;
            stats.push(observable(s));
        }
        empirical.scale(1.0 / self.replicas as f64);

        EnsembleResult {
            replicas: self.replicas,
            steps,
            final_states,
            empirical,
            observable_stats: stats,
        }
    }

    /// Convenience: runs the ensemble and reports the total variation distance of
    /// the empirical final-state distribution to `reference` (e.g. the Gibbs
    /// measure), without needing an observable.
    pub fn tv_distance_after<G: Game + Sync>(
        &self,
        dynamics: &LogitDynamics<G>,
        start: usize,
        steps: u64,
        reference: &Vector,
    ) -> f64 {
        self.run(dynamics, start, steps, |_| 0.0).tv_to(reference)
    }

    /// Estimates the time at which the empirical distribution first comes within
    /// `target_tv + sampling slack` of the reference by doubling the horizon.
    /// Returns `(steps, tv)` for the first horizon that met the target, or `None`
    /// if `max_steps` was reached first.
    ///
    /// This is a *statistical estimate* of the mixing time (it under-resolves TV
    /// distances below the sampling noise `~sqrt(|S|/replicas)`), used only where
    /// exact computation is infeasible.
    pub fn estimate_mixing_by_doubling<G: Game + Sync>(
        &self,
        dynamics: &LogitDynamics<G>,
        start: usize,
        reference: &Vector,
        target_tv: f64,
        max_steps: u64,
    ) -> Option<(u64, f64)> {
        let mut steps = 1u64;
        loop {
            let tv = self.tv_distance_after(dynamics, start, steps, reference);
            if tv <= target_tv {
                return Some((steps, tv));
            }
            if steps >= max_steps {
                return None;
            }
            steps = (steps * 2).min(max_steps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gibbs::gibbs_distribution;
    use logit_games::{CoordinationGame, GraphicalCoordinationGame, PotentialGame, WellGame};
    use logit_graphs::GraphBuilder;
    use rand::rngs::StdRng;

    #[test]
    fn trajectory_has_expected_length_and_valid_states() {
        let game = WellGame::plateau(4, 1.0);
        let d = LogitDynamics::new(game, 0.5);
        let mut rng = StdRng::seed_from_u64(1);
        let traj = simulate_trajectory(&d, 0, 100, &mut rng);
        assert_eq!(traj.len(), 101);
        assert!(traj.iter().all(|&s| s < d.num_states()));
    }

    #[test]
    fn ensemble_is_reproducible_and_thread_count_independent() {
        let game = WellGame::plateau(4, 1.0);
        let d = LogitDynamics::new(game, 0.8);
        let sim = Simulator::new(123, 64);
        let a = sim.run(&d, 0, 50, |s| s as f64);
        let b = sim.run(&d, 0, 50, |s| s as f64);
        assert_eq!(a.final_states, b.final_states);
        assert_eq!(a.observable_stats.mean(), b.observable_stats.mean());
    }

    #[test]
    fn empirical_distribution_sums_to_one() {
        let game = WellGame::plateau(3, 1.0);
        let d = LogitDynamics::new(game, 0.3);
        let sim = Simulator::new(5, 200);
        let result = sim.run(&d, 0, 30, |_| 1.0);
        assert!(result.empirical.is_distribution(1e-9));
        assert_eq!(result.final_states.len(), 200);
        assert_eq!(result.observable_stats.count(), 200);
    }

    #[test]
    fn long_runs_approach_the_gibbs_measure() {
        // Small game, moderate beta: after many steps the ensemble law should be
        // close to Gibbs (within sampling noise).
        let game = GraphicalCoordinationGame::new(
            GraphBuilder::ring(3),
            CoordinationGame::symmetric(1.0),
        );
        let beta = 0.7;
        let d = LogitDynamics::new(game.clone(), beta);
        let pi = gibbs_distribution(&game, beta);
        let sim = Simulator::new(42, 4000);
        let tv = sim.tv_distance_after(&d, 0, 400, &pi);
        assert!(tv < 0.08, "ensemble law should approach Gibbs, tv = {tv}");
    }

    #[test]
    fn observable_tracks_potential() {
        let game = WellGame::plateau(4, 2.0);
        let beta = 3.0;
        let d = LogitDynamics::new(game.clone(), beta);
        let space = d.space().clone();
        let sim = Simulator::new(7, 500);
        let result = sim.run(&d, 0, 300, |idx| game.potential(&space.profile_of(idx)));
        // At beta = 3 the chain should mostly sit in the wells (potential -2).
        assert!(result.observable_stats.mean() < -1.0);
    }

    #[test]
    fn doubling_estimator_finds_fast_mixing() {
        let game = WellGame::plateau(3, 0.5);
        let beta = 0.2;
        let d = LogitDynamics::new(game.clone(), beta);
        let pi = gibbs_distribution(&game, beta);
        let sim = Simulator::new(11, 3000);
        let found = sim.estimate_mixing_by_doubling(&d, 0, &pi, 0.12, 4096);
        let (steps, tv) = found.expect("a tiny game at low beta mixes quickly");
        assert!(steps <= 4096);
        assert!(tv <= 0.12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_start_state_rejected() {
        let game = WellGame::plateau(3, 1.0);
        let d = LogitDynamics::new(game, 1.0);
        let sim = Simulator::new(1, 10);
        let _ = sim.run(&d, 1000, 10, |_| 0.0);
    }
}
