//! The telemetry-off guard: a default build (no `telemetry` feature)
//! must be *provably* unobservable — zero-sized instrument handles, an
//! empty registry whatever the engines do, and bit-identical pipelined
//! and coloured-pooled trajectories under fixed seeds even with
//! `LOGIT_TELEMETRY=1` in the environment (the runtime switch cannot
//! conjure instruments the build left out).
//!
//! The whole file is compiled out of feature builds: the equivalent
//! live-path assertions live in `telemetry_on.rs`.

#![cfg(not(feature = "telemetry"))]

use logit_core::observables::PotentialObservable;
use logit_core::parallel::coloring_for_game;
use logit_core::rules::{Logit, MetropolisLogit};
use logit_core::{
    DynamicsEngine, PipelineConfig, RuntimeConfig, Scratch, Simulator, WaitPolicy, WorkerPool,
};
use logit_games::{Game, GraphicalCoordinationGame, TablePotentialGame};
use logit_graphs::GraphBuilder;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The compile-time pin of the "no telemetry feature = no cost" claim:
/// every handle an instrumented struct embeds (pool, farm sender,
/// lag controller, cache) occupies zero bytes, so the instrumented
/// layouts are byte-for-byte what they were before instrumentation.
#[test]
fn instrument_handles_are_zero_sized_in_the_default_build() {
    assert_eq!(std::mem::size_of::<logit_telemetry::Counter>(), 0);
    assert_eq!(std::mem::size_of::<logit_telemetry::Gauge>(), 0);
    assert_eq!(std::mem::size_of::<logit_telemetry::Histogram>(), 0);
    assert_eq!(std::mem::size_of::<logit_telemetry::Span>(), 0);
    assert!(!logit_telemetry::enabled());
    assert!(
        !logit_telemetry::enable(),
        "the runtime switch needs the feature"
    );
}

/// Driving every instrumented engine layer must leave the no-op registry
/// empty: no instrument names, no allocations, nothing to render.
#[test]
fn engines_never_register_instruments_without_the_feature() {
    let runtime = RuntimeConfig {
        workers: 2,
        ..RuntimeConfig::default()
    };
    let sim = Simulator::with_runtime(0xAB, 4, runtime);
    let mut rng = StdRng::seed_from_u64(7);
    let game = TablePotentialGame::random(vec![2, 3, 2], 2.0, &mut rng);
    let d = DynamicsEngine::with_rule(game.clone(), Logit, 1.1);
    let obs = PotentialObservable::new(game);
    let _ = sim.run_profiles_pipelined(&d, &[0, 0, 0], 40, 8, &obs);
    assert_eq!(
        logit_telemetry::global().instrument_count(),
        0,
        "a feature-off build may never allocate registry entries"
    );
    assert!(logit_telemetry::global()
        .render()
        .contains("telemetry disabled"));
}

/// Fixed-seed bit-identity with `LOGIT_TELEMETRY=1` exported: pipelined
/// against sequential. The env switch is set *inside* the test process
/// (reads are per-process cached, so this test also pins that a no-op
/// build never even consults the variable).
#[test]
fn pipelined_runs_stay_bit_identical_with_the_env_switch_set() {
    std::env::set_var("LOGIT_TELEMETRY", "1");
    let mut rng = StdRng::seed_from_u64(2024);
    let game = TablePotentialGame::random(vec![2, 3, 2], 2.0, &mut rng);
    let runtime = RuntimeConfig {
        workers: 3,
        ..RuntimeConfig::default()
    };
    let sim = Simulator::with_runtime(2024 ^ 0x9192, 16, runtime);
    let obs = PotentialObservable::new(game.clone());
    let config = PipelineConfig {
        chunk_ticks: 7,
        channel_capacity: 3,
        ..PipelineConfig::default()
    };
    for beta in [0.4, 1.7] {
        let d = DynamicsEngine::with_rule(game.clone(), Logit, beta);
        let start = [0usize, 0, 0];
        let sequential = sim.run_profiles(&d, &start, 33, 10, &obs);
        let pipelined = sim.run_profiles_pipelined_with(&d, &start, 33, 10, &obs, &config);
        assert_eq!(sequential.times, pipelined.times);
        assert_eq!(sequential.final_values, pipelined.final_values);
        assert_eq!(sequential.law().ks_distance(&pipelined.law()), 0.0);
    }
    assert_eq!(logit_telemetry::global().instrument_count(), 0);
}

/// Fixed-seed bit-identity, coloured-pooled against the sequential class
/// sweep, across wait policies — the same contract the proptests sweep,
/// pinned here under the no-op build with the env switch set.
#[test]
fn coloured_pooled_runs_stay_bit_identical_with_the_env_switch_set() {
    std::env::set_var("LOGIT_TELEMETRY", "1");
    let mut graph_rng = StdRng::seed_from_u64(4242);
    let graph = GraphBuilder::connected_erdos_renyi(9, 0.5, &mut graph_rng, 20);
    let game =
        GraphicalCoordinationGame::new(graph, logit_games::CoordinationGame::from_deltas(2.0, 1.0));
    let coloring = coloring_for_game(&game);
    for policy in [WaitPolicy::Spin, WaitPolicy::Yield, WaitPolicy::Park] {
        let config = RuntimeConfig {
            workers: 3,
            wait_policy: policy,
            min_class_size: 0,
            ..RuntimeConfig::default()
        };
        let pool = WorkerPool::new(&config);
        let d = DynamicsEngine::with_rule(game.clone(), MetropolisLogit, 1.3);
        let n = game.num_players();
        let mut scratch = Scratch::for_game(&game);
        let mut pooled_scratch = Scratch::for_game(&game);
        let mut pooled_staged = Vec::new();
        let mut seq = vec![0usize; n];
        let mut pooled = vec![0usize; n];
        for t in 0..2 * coloring.num_classes() as u64 + 3 {
            let moved_seq = d.step_coloured(&coloring, t, 4242, &mut seq, &mut scratch);
            let moved_pooled = d.step_coloured_pooled(
                &coloring,
                t,
                4242,
                &mut pooled,
                &mut pooled_scratch,
                &mut pooled_staged,
                &pool,
                &config,
            );
            assert_eq!(seq, pooled, "pooled diverged at t = {t} under {policy:?}");
            assert_eq!(moved_seq, moved_pooled);
        }
    }
    assert_eq!(logit_telemetry::global().instrument_count(), 0);
}
