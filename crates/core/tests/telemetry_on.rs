//! The live-telemetry counterpart of `telemetry_off.rs`: with the
//! `telemetry` feature compiled in and recording force-enabled, the
//! engines must (a) stay bit-identical to their sequential baselines —
//! instruments observe, they never steer — and (b) actually populate the
//! global registry with the runtime/pipeline instrument families the
//! observability docs promise.

#![cfg(feature = "telemetry")]

use logit_core::observables::PotentialObservable;
use logit_core::parallel::coloring_for_game;
use logit_core::rules::{Logit, MetropolisLogit};
use logit_core::{DynamicsEngine, PipelineConfig, RuntimeConfig, Scratch, Simulator, WorkerPool};
use logit_games::{Game, GraphicalCoordinationGame, TablePotentialGame};
use logit_graphs::GraphBuilder;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One process-wide test: the registry is global, so a single test keeps
/// the instrument-population asserts free of inter-test ordering races.
#[test]
fn live_recording_observes_without_steering() {
    assert!(logit_telemetry::enable(), "feature builds honour enable()");
    assert!(logit_telemetry::enabled());

    // Pipelined ensembles stay bit-identical to the sequential run while
    // the farm records channel occupancy and chunk-size trajectories.
    let mut rng = StdRng::seed_from_u64(2024);
    let game = TablePotentialGame::random(vec![2, 3, 2], 2.0, &mut rng);
    let runtime = RuntimeConfig {
        workers: 3,
        ..RuntimeConfig::default()
    };
    let sim = Simulator::with_runtime(2024 ^ 0x9192, 16, runtime);
    let obs = PotentialObservable::new(game.clone());
    let config = PipelineConfig {
        chunk_ticks: 7,
        channel_capacity: 3,
        ..PipelineConfig::default()
    };
    let d = DynamicsEngine::with_rule(game.clone(), Logit, 1.1);
    let start = [0usize, 0, 0];
    let sequential = sim.run_profiles(&d, &start, 33, 10, &obs);
    let pipelined = sim.run_profiles_pipelined_with(&d, &start, 33, 10, &obs, &config);
    assert_eq!(sequential.times, pipelined.times);
    assert_eq!(sequential.final_values, pipelined.final_values);
    assert_eq!(sequential.law().ks_distance(&pipelined.law()), 0.0);

    // Coloured-pooled stepping stays bit-identical to the sequential
    // class sweep while the pool records dispatch spans and steal counts.
    let mut graph_rng = StdRng::seed_from_u64(4242);
    let graph = GraphBuilder::connected_erdos_renyi(9, 0.5, &mut graph_rng, 20);
    let coord =
        GraphicalCoordinationGame::new(graph, logit_games::CoordinationGame::from_deltas(2.0, 1.0));
    let coloring = coloring_for_game(&coord);
    let pool_config = RuntimeConfig {
        workers: 3,
        min_class_size: 0,
        ..RuntimeConfig::default()
    };
    let pool = WorkerPool::new(&pool_config);
    let engine = DynamicsEngine::with_rule(coord.clone(), MetropolisLogit, 1.3);
    let n = coord.num_players();
    let mut scratch = Scratch::for_game(&coord);
    let mut pooled_scratch = Scratch::for_game(&coord);
    let mut pooled_staged = Vec::new();
    let mut seq = vec![0usize; n];
    let mut pooled = vec![0usize; n];
    for t in 0..2 * coloring.num_classes() as u64 + 3 {
        let moved_seq = engine.step_coloured(&coloring, t, 4242, &mut seq, &mut scratch);
        let moved_pooled = engine.step_coloured_pooled(
            &coloring,
            t,
            4242,
            &mut pooled,
            &mut pooled_scratch,
            &mut pooled_staged,
            &pool,
            &pool_config,
        );
        assert_eq!(
            seq, pooled,
            "pooled diverged at t = {t} under live telemetry"
        );
        assert_eq!(moved_seq, moved_pooled);
    }

    // Both layers must have left their instrument families behind.
    assert!(logit_telemetry::global().instrument_count() > 0);
    let snapshot = logit_telemetry::global().render();
    for family in [
        "runtime_dispatch_ns",
        "pipeline_batches_sent",
        "pipeline_channel_in_flight",
        "pipeline_chunk_ticks",
    ] {
        assert!(
            snapshot.contains(family),
            "live registry must carry `{family}`; snapshot:\n{snapshot}"
        );
    }
    let samples = logit_telemetry::parse_prometheus(&snapshot)
        .expect("live snapshot must round-trip through the parser");
    assert!(
        samples
            .get("runtime_dispatch_ns_count")
            .copied()
            .unwrap_or(0.0)
            >= 1.0,
        "the pool recorded at least one dispatch span"
    );
}
