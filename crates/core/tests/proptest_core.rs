//! Property-based tests for the logit dynamics itself.

use logit_core::{gibbs_distribution, zeta, zeta_brute_force, LogitDynamics};
use logit_games::{Game, PotentialGame, TablePotentialGame};
use logit_markov::{stationary_distribution, total_variation};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The transition matrix of eq. (3) is row-stochastic and ergodic for every
    /// random potential game and every β.
    #[test]
    fn transition_matrix_is_valid(seed in 0u64..10_000, beta in 0.0f64..4.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let game = TablePotentialGame::random(vec![2, 3], 3.0, &mut rng);
        let d = LogitDynamics::new(game, beta);
        let chain = d.transition_chain();
        prop_assert!(chain.is_ergodic());
    }

    /// For potential games the Gibbs measure is stationary and the chain is
    /// reversible with respect to it (eq. 4 + the detailed-balance remark).
    #[test]
    fn gibbs_is_stationary_and_reversible(seed in 0u64..10_000, beta in 0.0f64..3.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let game = TablePotentialGame::random(vec![2, 2, 2], 2.0, &mut rng);
        let d = LogitDynamics::new(game.clone(), beta);
        let chain = d.transition_chain();
        let gibbs = gibbs_distribution(&game, beta);
        let linear = stationary_distribution(&chain);
        prop_assert!(total_variation(&gibbs, &linear) < 1e-7);
        prop_assert!(chain.is_reversible(&gibbs, 1e-7));
    }

    /// Theorem 3.1: every eigenvalue of the logit chain of a potential game is
    /// non-negative, hence λ* = λ₂ and t_rel = 1/(1-λ₂).
    #[test]
    fn theorem_3_1_nonnegative_spectrum(seed in 0u64..10_000, beta in 0.0f64..3.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let game = TablePotentialGame::random(vec![2, 2, 2], 2.0, &mut rng);
        let m = logit_core::exact_mixing_time(&game, beta, 0.25, 1 << 20);
        prop_assert!(m.lambda_min >= -1e-8, "negative eigenvalue {}", m.lambda_min);
    }

    /// The update distribution is a proper distribution and favours higher
    /// utility strategies (for β > 0).
    #[test]
    fn update_distribution_is_monotone_in_utility(seed in 0u64..10_000, beta in 0.01f64..5.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let game = TablePotentialGame::random(vec![3, 2], 2.0, &mut rng);
        let d = LogitDynamics::new(game.clone(), beta);
        let space = game.profile_space();
        for idx in space.indices() {
            let profile = space.profile_of(idx);
            let probs = d.update_distribution(0, &profile);
            prop_assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            // Higher-utility strategies get (weakly) higher probabilities.
            let mut utils = Vec::new();
            for s in 0..3 {
                let mut p = profile.clone();
                p[0] = s;
                utils.push(game.utility(0, &p));
            }
            for a in 0..3 {
                for b in 0..3 {
                    if utils[a] > utils[b] {
                        prop_assert!(probs[a] >= probs[b] - 1e-12);
                    }
                }
            }
        }
    }

    /// The union-find ζ always matches the brute-force reference.
    #[test]
    fn zeta_union_find_is_correct(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let game = TablePotentialGame::random(vec![2, 2, 2], 3.0, &mut rng);
        let fast = zeta(&game).zeta;
        let slow = zeta_brute_force(&game);
        prop_assert!((fast - slow).abs() < 1e-9);
        // ζ is at most ΔΦ and at least 0.
        prop_assert!(fast >= -1e-12);
        prop_assert!(fast <= game.max_global_variation() + 1e-9);
    }

    /// Monotonicity of the Gibbs measure: raising β can only move mass towards
    /// the minimum-potential profile.
    #[test]
    fn gibbs_concentrates_with_beta(seed in 0u64..10_000, beta in 0.1f64..2.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let game = TablePotentialGame::random(vec![2, 2], 3.0, &mut rng);
        let space = game.profile_space();
        let argmin = space
            .indices()
            .min_by(|&a, &b| {
                game.potential(&space.profile_of(a))
                    .partial_cmp(&game.potential(&space.profile_of(b)))
                    .unwrap()
            })
            .unwrap();
        let low = gibbs_distribution(&game, beta);
        let high = gibbs_distribution(&game, beta * 2.0);
        prop_assert!(high[argmin] >= low[argmin] - 1e-12);
    }
}
