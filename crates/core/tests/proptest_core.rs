//! Property-based tests for the logit dynamics itself.

use logit_core::observables::PotentialObservable;
use logit_core::parallel::{coloring_for_game, ColouredBlocks, RandomBlock};
use logit_core::rules::{Fermi, ImitateBetter, Logit, MetropolisLogit, UpdateRule};
use logit_core::schedules::{AllLogit, SelectionSchedule, SystematicSweep, UniformSingle};
use logit_core::{
    gibbs_distribution, zeta, zeta_brute_force, DynamicsEngine, LogitDynamics, Scratch, Simulator,
    TemperingEnsemble,
};
use logit_games::{
    interaction_graph, Game, GraphicalCoordinationGame, PotentialGame, TablePotentialGame,
};
use logit_graphs::GraphBuilder;
use logit_markov::{stationary_distribution, total_variation};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A verbatim copy of the pre-refactor `LogitDynamics::step_profile` hot
/// path (softmax via log-sum-exp, inverse-CDF sampling), used to pin the
/// refactored engine to the exact trajectories the old engine produced.
///
/// A sibling reference copy lives in `crates/bench/src/bin/bench_engines.rs`
/// (`legacy_logit_steps_per_sec`): that one pins *throughput parity*, this
/// one pins *bit-identical trajectories*; keep both in sync with the
/// historical hot path.
fn legacy_step_profile<G: Game, R: Rng + ?Sized>(
    game: &G,
    beta: f64,
    profile: &mut [usize],
    rng: &mut R,
) {
    let n = game.num_players();
    let player = rng.gen_range(0..n);
    let m = game.num_strategies(player);
    let mut utils = vec![0.0; m];
    game.utilities_for(player, profile, &mut utils);
    let max = utils
        .iter()
        .map(|&u| beta * u)
        .fold(f64::NEG_INFINITY, f64::max);
    let probs: Vec<f64> = utils.iter().map(|&u| (beta * u - max).exp()).collect();
    let total: f64 = probs.iter().sum();
    let u: f64 = rng.gen();
    let mut acc = 0.0;
    let mut chosen = m - 1;
    for (s, &p) in probs.iter().enumerate() {
        acc += p / total;
        if u < acc {
            chosen = s;
            break;
        }
    }
    profile[player] = chosen;
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The transition matrix of eq. (3) is row-stochastic and ergodic for every
    /// random potential game and every β.
    #[test]
    fn transition_matrix_is_valid(seed in 0u64..10_000, beta in 0.0f64..4.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let game = TablePotentialGame::random(vec![2, 3], 3.0, &mut rng);
        let d = LogitDynamics::new(game, beta);
        let chain = d.transition_chain();
        prop_assert!(chain.is_ergodic());
    }

    /// For potential games the Gibbs measure is stationary and the chain is
    /// reversible with respect to it (eq. 4 + the detailed-balance remark).
    #[test]
    fn gibbs_is_stationary_and_reversible(seed in 0u64..10_000, beta in 0.0f64..3.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let game = TablePotentialGame::random(vec![2, 2, 2], 2.0, &mut rng);
        let d = LogitDynamics::new(game.clone(), beta);
        let chain = d.transition_chain();
        let gibbs = gibbs_distribution(&game, beta);
        let linear = stationary_distribution(&chain);
        prop_assert!(total_variation(&gibbs, &linear) < 1e-7);
        prop_assert!(chain.is_reversible(&gibbs, 1e-7));
    }

    /// Theorem 3.1: every eigenvalue of the logit chain of a potential game is
    /// non-negative, hence λ* = λ₂ and t_rel = 1/(1-λ₂).
    #[test]
    fn theorem_3_1_nonnegative_spectrum(seed in 0u64..10_000, beta in 0.0f64..3.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let game = TablePotentialGame::random(vec![2, 2, 2], 2.0, &mut rng);
        let m = logit_core::exact_mixing_time(&game, beta, 0.25, 1 << 20);
        prop_assert!(m.lambda_min >= -1e-8, "negative eigenvalue {}", m.lambda_min);
    }

    /// The update distribution is a proper distribution and favours higher
    /// utility strategies (for β > 0).
    #[test]
    fn update_distribution_is_monotone_in_utility(seed in 0u64..10_000, beta in 0.01f64..5.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let game = TablePotentialGame::random(vec![3, 2], 2.0, &mut rng);
        let d = LogitDynamics::new(game.clone(), beta);
        let space = game.profile_space();
        for idx in space.indices() {
            let profile = space.profile_of(idx);
            let probs = d.update_distribution(0, &profile);
            prop_assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            // Higher-utility strategies get (weakly) higher probabilities.
            let mut utils = Vec::new();
            for s in 0..3 {
                let mut p = profile.clone();
                p[0] = s;
                utils.push(game.utility(0, &p));
            }
            for a in 0..3 {
                for b in 0..3 {
                    if utils[a] > utils[b] {
                        prop_assert!(probs[a] >= probs[b] - 1e-12);
                    }
                }
            }
        }
    }

    /// The union-find ζ always matches the brute-force reference.
    #[test]
    fn zeta_union_find_is_correct(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let game = TablePotentialGame::random(vec![2, 2, 2], 3.0, &mut rng);
        let fast = zeta(&game).zeta;
        let slow = zeta_brute_force(&game);
        prop_assert!((fast - slow).abs() < 1e-9);
        // ζ is at most ΔΦ and at least 0.
        prop_assert!(fast >= -1e-12);
        prop_assert!(fast <= game.max_global_variation() + 1e-9);
    }

    /// Engine equivalence, trajectory level: the in-place profile engine and
    /// the flat-index engine consume the RNG stream identically, so from the
    /// same seed they walk the same trajectory — on any random potential
    /// game, any β, any start profile.
    #[test]
    fn engines_walk_identical_trajectories(
        seed in 0u64..10_000,
        beta in 0.0f64..4.0,
        start_raw in 0usize..1000,
    ) {
        let mut game_rng = StdRng::seed_from_u64(seed);
        let game = TablePotentialGame::random(vec![2, 3, 2], 3.0, &mut game_rng);
        let d = LogitDynamics::new(game, beta);
        let space = d.space().clone();
        let start = start_raw % space.size();

        let mut rng_flat = StdRng::seed_from_u64(seed ^ 0xABCD);
        let mut rng_prof = StdRng::seed_from_u64(seed ^ 0xABCD);
        let mut scratch = Scratch::for_game(d.game());
        let mut state = start;
        let mut profile = space.profile_of(start);
        for _ in 0..120 {
            state = d.step(state, &mut rng_flat);
            d.step_profile(&mut profile, &mut scratch, &mut rng_prof);
            prop_assert_eq!(space.index_of(&profile), state);
        }
    }

    /// Engine equivalence, ensemble level: `Simulator::run` (flat) and
    /// `Simulator::run_profiles` (in-place) derive identical per-replica
    /// streams, so the final-time empirical observable laws agree exactly —
    /// a far stronger property than the sampling-tolerance agreement any
    /// correct pair of engines would show.
    #[test]
    fn ensemble_empirical_laws_agree(seed in 0u64..10_000, beta in 0.0f64..3.0) {
        let mut game_rng = StdRng::seed_from_u64(seed);
        let game = TablePotentialGame::random(vec![2, 2, 3], 2.0, &mut game_rng);
        let d = LogitDynamics::new(game.clone(), beta);
        let space = d.space().clone();
        let sim = Simulator::new(seed ^ 0x5117, 32);

        let flat = sim.run(&d, 0, 40, |idx| game.potential(&space.profile_of(idx)));
        let obs = PotentialObservable::new(game.clone());
        let start = space.profile_of(0);
        let prof = sim.run_profiles(&d, &start, 40, 10, &obs);

        let flat_finals: Vec<f64> = flat
            .final_states
            .iter()
            .map(|&idx| game.potential(&space.profile_of(idx)))
            .collect();
        prop_assert_eq!(&flat_finals, &prof.final_values);
        // And through the law abstraction: KS distance exactly zero.
        let flat_law = logit_core::EmpiricalLaw::from_samples(flat_finals);
        prop_assert!(prof.law().ks_distance(&flat_law) == 0.0);
    }

    /// The batch utilities hook agrees with per-strategy utility calls on
    /// arbitrary games (the default implementation and any override).
    #[test]
    fn utilities_for_matches_pointwise_utilities(seed in 0u64..10_000, profile_raw in 0usize..1000) {
        let mut game_rng = StdRng::seed_from_u64(seed);
        let game = TablePotentialGame::random(vec![3, 2, 2], 2.0, &mut game_rng);
        let space = game.profile_space();
        let mut profile = space.profile_of(profile_raw % space.size());
        for player in 0..game.num_players() {
            let m = game.num_strategies(player);
            let mut out = vec![0.0; m];
            let before = profile.clone();
            game.utilities_for(player, &mut profile, &mut out);
            prop_assert_eq!(&before, &profile, "profile must be restored");
            for (s, &u) in out.iter().enumerate() {
                let mut varied = profile.clone();
                varied[player] = s;
                prop_assert!((u - game.utility(player, &varied)).abs() < 1e-12);
            }
        }
    }

    /// The streamed time series of the profile ensemble is internally
    /// consistent: one stat per recorded time, every stat over all replicas,
    /// and the last series entry matches the final-value law.
    #[test]
    fn streaming_series_is_consistent(seed in 0u64..10_000, beta in 0.0f64..2.0) {
        let mut game_rng = StdRng::seed_from_u64(seed);
        let game = TablePotentialGame::random(vec![2, 2, 2], 2.0, &mut game_rng);
        let d = LogitDynamics::new(game.clone(), beta);
        let obs = PotentialObservable::new(game.clone());
        let sim = Simulator::new(seed, 16);
        let result = sim.run_profiles(&d, &[0, 0, 0], 33, 10, &obs);
        prop_assert_eq!(&result.times, &vec![10u64, 20, 30, 33]);
        prop_assert_eq!(result.series.len(), result.times.len());
        for stats in &result.series {
            prop_assert_eq!(stats.count(), 16);
        }
        let last = result.series.last().unwrap();
        let law = result.law();
        prop_assert!((last.mean() - law.mean()).abs() < 1e-12);
        prop_assert!((last.min() - law.min()).abs() < 1e-12);
        prop_assert!((last.max() - law.max()).abs() < 1e-12);
    }

    /// Detailed balance, satellite check: on small random potential games the
    /// `Logit` and `MetropolisLogit` uniform-selection chains both have
    /// stationary distribution equal to `gibbs()` — verified exactly on the
    /// sparse transition matrix, entrywise (`π_x P_{xy} = π_y P_{yx}`) and as
    /// a fixed point (`π P = π`).
    #[test]
    fn logit_and_metropolis_satisfy_detailed_balance_wrt_gibbs(
        seed in 0u64..10_000,
        beta in 0.0f64..3.0,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let game = TablePotentialGame::random(vec![2, 3, 2], 2.0, &mut rng);
        let pi = gibbs_distribution(&game, beta);

        fn check<G, U>(d: &DynamicsEngine<G, U>, pi: &logit_linalg::Vector) -> Result<(), TestCaseError>
        where
            G: PotentialGame,
            U: UpdateRule,
        {
            let sparse = d.transition_sparse();
            prop_assert!(sparse.is_row_stochastic(1e-9));
            let p = sparse.to_dense();
            let size = p.nrows();
            // Entrywise detailed balance w.r.t. the Gibbs measure...
            for x in 0..size {
                for y in 0..size {
                    prop_assert!(
                        (pi[x] * p[(x, y)] - pi[y] * p[(y, x)]).abs() < 1e-9,
                        "detailed balance fails at ({x}, {y})"
                    );
                }
            }
            // ...hence Gibbs is a fixed point of the chain.
            let pi_next = sparse.vecmat(pi);
            prop_assert!(total_variation(&pi_next, pi) < 1e-9);
            Ok(())
        }

        check(&LogitDynamics::new(game.clone(), beta), &pi)?;
        check(&DynamicsEngine::with_rule(game.clone(), MetropolisLogit, beta), &pi)?;
        // The Fermi pairwise-comparison rule shares the acceptance ratio
        // e^{βΔ}, hence the same reversibility (its satellite pin).
        check(&DynamicsEngine::with_rule(game, Fermi, beta), &pi)?;
    }

    /// Backward-compatibility pin, satellite check: the `Logit` rule's
    /// trajectories through the refactored generic engine are bit-identical
    /// to the pre-refactor engine (verbatim reference implementation above)
    /// from the same seed — same player draws, same strategy draws, step by
    /// step, on any random potential game and any β.
    #[test]
    fn logit_rule_is_bit_identical_to_the_pre_refactor_engine(
        seed in 0u64..10_000,
        beta in 0.0f64..5.0,
        start_raw in 0usize..1000,
    ) {
        let mut game_rng = StdRng::seed_from_u64(seed);
        let game = TablePotentialGame::random(vec![2, 3, 2], 3.0, &mut game_rng);
        let d = LogitDynamics::new(game.clone(), beta);
        let space = game.profile_space();
        let start = space.profile_of(start_raw % space.size());

        let mut rng_new = StdRng::seed_from_u64(seed ^ 0xBEEF);
        let mut rng_old = StdRng::seed_from_u64(seed ^ 0xBEEF);
        let mut scratch = Scratch::for_game(&game);
        let mut prof_new = start.clone();
        let mut prof_old = start;
        for t in 0..150 {
            d.step_profile(&mut prof_new, &mut scratch, &mut rng_new);
            legacy_step_profile(&game, beta, &mut prof_old, &mut rng_old);
            prop_assert_eq!(&prof_new, &prof_old, "diverged from legacy engine at step {}", t);
        }
        // And the RNG streams are in the same position afterwards.
        prop_assert_eq!(rng_new.gen::<u64>(), rng_old.gen::<u64>());
    }

    /// Tempering swap kernel, satellite check: for a two-rung ladder on a
    /// random tiny potential game, the exact swap kernel and the exact tensor
    /// sweep are both entrywise reversible w.r.t. the *product* Gibbs measure
    /// `π(x, y) ∝ e^{−β_hot Φ(x) − β_cold Φ(y)}`, and the composed tempering
    /// round fixes it — for the logit and the Metropolis rule alike. This is
    /// the game-level twin of the chain-level proptests in
    /// `crates/markov/tests/proptest_product.rs`.
    #[test]
    fn tempering_swap_kernel_satisfies_detailed_balance_wrt_product_gibbs(
        seed in 0u64..10_000,
        beta_hot in 0.0f64..1.0,
        beta_gap in 0.1f64..2.0,
        sweep_ticks in 1u64..4,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let game = TablePotentialGame::random(vec![2, 2], 2.0, &mut rng);
        let ladder = [beta_hot, beta_hot + beta_gap];

        fn check<U: UpdateRule>(
            ens: &TemperingEnsemble<TablePotentialGame, U>,
            sweep_ticks: u64,
        ) -> Result<(), TestCaseError> {
            let pi = ens.product_gibbs();
            prop_assert!(pi.is_distribution(1e-9));
            // Entrywise detailed balance of the swap kernel...
            let swap = ens.swap_chain_exact();
            let size = pi.len();
            for s in 0..size {
                for t in 0..size {
                    let forward = pi[s] * swap.prob(s, t);
                    let backward = pi[t] * swap.prob(t, s);
                    prop_assert!(
                        (forward - backward).abs() < 1e-10,
                        "swap detailed balance fails at ({s}, {t})"
                    );
                }
            }
            // ...and of the tensor sweep (both marginal chains are reversible).
            prop_assert!(ens.tensor_chain_exact().is_reversible(&pi, 1e-9));
            // The composed round keeps the product Gibbs measure stationary.
            let round = ens.round_chain_exact(sweep_ticks);
            let stepped = round.step_distribution(&pi);
            prop_assert!(total_variation(&stepped, &pi) < 1e-9);
            Ok(())
        }

        check(&TemperingEnsemble::new(game.clone(), Logit, &ladder), sweep_ticks)?;
        check(&TemperingEnsemble::new(game, MetropolisLogit, &ladder), sweep_ticks)?;
    }

    /// Bit-identity regression, satellite check: a `K = 1` tempering ladder is
    /// a no-op wrapper — its single replica walks exactly the trajectory of
    /// the plain `step_scheduled` engine from the same seed (the tempering
    /// replica stream for rung 0 is the master seed itself, and the swap RNG
    /// is a separate stream that a one-rung ladder never touches).
    #[test]
    fn k1_tempering_ladder_is_bit_identical_to_the_plain_engine(
        seed in 0u64..10_000,
        beta in 0.0f64..4.0,
        sweep_ticks in 1u64..6,
    ) {
        let mut game_rng = StdRng::seed_from_u64(seed);
        let game = TablePotentialGame::random(vec![2, 3, 2], 3.0, &mut game_rng);
        let ens = TemperingEnsemble::new(game.clone(), Logit, &[beta]);
        let mut state = ens.init_state(&[0, 0, 0], seed);

        let plain = LogitDynamics::new(game.clone(), beta);
        // Replica 0's stream seed is `seed ^ 0·odd = seed`.
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut scratch = Scratch::for_game(&game);
        let mut profile = vec![0usize; 3];

        for round in 0..30u64 {
            let swaps = ens.round(&UniformSingle, &mut state, sweep_ticks);
            prop_assert_eq!(swaps, 0);
            for t in round * sweep_ticks..(round + 1) * sweep_ticks {
                plain.step_scheduled(&UniformSingle, t, &mut profile, &mut scratch, &mut rng);
            }
            prop_assert_eq!(state.cold_profile(), &profile[..], "diverged in round {}", round);
        }
    }

    /// Selection-schedule invariants, satellite check: each schedule updates
    /// exactly the set of players it claims. `UniformSingle` selects one
    /// in-range player per tick and `step_scheduled` moves no one else; a
    /// `SystematicSweep` round of `n` consecutive ticks selects every player
    /// exactly once; `AllLogit` selects all `n` players, in order, every tick.
    #[test]
    fn selection_schedules_update_the_players_they_claim(
        seed in 0u64..10_000,
        beta in 0.0f64..3.0,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let game = TablePotentialGame::random(vec![2, 3, 2, 2], 2.0, &mut rng);
        let n = game.num_players();
        let d = LogitDynamics::new(game.clone(), beta);
        let mut step_rng = StdRng::seed_from_u64(seed ^ 0xFACE);
        let mut sel_rng = StdRng::seed_from_u64(seed ^ 0xFACE);
        let mut scratch = Scratch::for_game(&game);
        let mut selected = Vec::new();

        // UniformSingle: one in-range player; everyone else frozen. The
        // schedule draws its player from the same stream the step consumes,
        // so probe the selection on a clone of the stepping RNG.
        let mut profile = vec![0usize; n];
        for t in 0..40u64 {
            UniformSingle.select_players(t, n, &mut step_rng.clone(), &mut selected);
            prop_assert_eq!(selected.len(), 1);
            prop_assert!(selected[0] < n);
            let before = profile.clone();
            d.step_scheduled(&UniformSingle, t, &mut profile, &mut scratch, &mut step_rng);
            for i in 0..n {
                if i != selected[0] {
                    prop_assert_eq!(profile[i], before[i], "tick {} froze player {}", t, i);
                }
            }
        }

        // SystematicSweep: every player exactly once per n-tick round, and a
        // tick only ever moves its scheduled player.
        let mut profile = vec![0usize; n];
        for round in 0..6u64 {
            let mut hits = vec![0usize; n];
            for t in round * n as u64..(round + 1) * n as u64 {
                SystematicSweep.select_players(t, n, &mut sel_rng, &mut selected);
                prop_assert_eq!(selected.len(), 1);
                hits[selected[0]] += 1;
                let before = profile.clone();
                d.step_scheduled(&SystematicSweep, t, &mut profile, &mut scratch, &mut step_rng);
                for i in 0..n {
                    if i != selected[0] {
                        prop_assert_eq!(profile[i], before[i]);
                    }
                }
            }
            prop_assert!(hits.iter().all(|&h| h == 1), "sweep round must hit every player once");
        }

        // AllLogit: the full player set, in order, every tick.
        for t in 0..5u64 {
            AllLogit.select_players(t, n, &mut sel_rng, &mut selected);
            prop_assert_eq!(&selected, &(0..n).collect::<Vec<_>>());
        }
    }

    /// Pipelined-runner bit-identity, satellite check (the PR-3 K = 1 ladder
    /// contract style): `run_profiles_pipelined` produces exactly the same
    /// `EmpiricalLaw` samples and `RunningStats` bytes as `run_profiles` —
    /// for every update rule × selection schedule combination, under fixed
    /// per-replica seeds, whatever the chunking, channel capacity and worker
    /// count of the pipeline.
    #[test]
    fn pipelined_ensembles_are_bit_identical_for_every_rule_and_schedule(
        seed in 0u64..10_000,
        beta in 0.0f64..3.0,
        chunk_ticks in 1u64..40,
        channel_capacity in 1usize..6,
        workers in 1usize..5,
    ) {
        use logit_core::{PipelineConfig, RuntimeConfig};

        let mut game_rng = StdRng::seed_from_u64(seed);
        let game = TablePotentialGame::random(vec![2, 3, 2], 2.0, &mut game_rng);
        // Worker count now lives on the Simulator's RuntimeConfig (the farm
        // draws its participants from the persistent pool).
        let runtime = RuntimeConfig { workers, ..RuntimeConfig::default() };
        let sim = Simulator::with_runtime(seed ^ 0x9192, 16, runtime);
        let obs = PotentialObservable::new(game.clone());
        let config = PipelineConfig { chunk_ticks, channel_capacity, ..PipelineConfig::default() };

        fn assert_identical(
            a: &logit_core::ProfileEnsembleResult,
            b: &logit_core::ProfileEnsembleResult,
        ) -> Result<(), TestCaseError> {
            prop_assert_eq!(&a.times, &b.times);
            // Exactly the same EmpiricalLaw samples...
            prop_assert_eq!(&a.final_values, &b.final_values);
            prop_assert!(a.law().ks_distance(&b.law()) == 0.0);
            // ...and exactly the same RunningStats, byte for byte.
            for (sa, sb) in a.series.iter().zip(&b.series) {
                prop_assert_eq!(sa.count(), sb.count());
                prop_assert_eq!(sa.mean(), sb.mean());
                prop_assert_eq!(sa.variance(), sb.variance());
                prop_assert_eq!(sa.min(), sb.min());
                prop_assert_eq!(sa.max(), sb.max());
            }
            Ok(())
        }

        fn check_rule<U: UpdateRule>(
            game: &TablePotentialGame,
            rule: U,
            beta: f64,
            sim: &Simulator,
            obs: &PotentialObservable<TablePotentialGame>,
            config: &logit_core::PipelineConfig,
        ) -> Result<(), TestCaseError> {
            let d = DynamicsEngine::with_rule(game.clone(), rule, beta);
            let start = [0usize, 0, 0];
            // Default (uniform single-player fast path).
            assert_identical(
                &sim.run_profiles(&d, &start, 33, 10, obs),
                &sim.run_profiles_pipelined_with(&d, &start, 33, 10, obs, config),
            )?;
            // Every explicit schedule through the scheduled tick path.
            assert_identical(
                &sim.run_profiles_scheduled(&d, &UniformSingle, &start, 33, 10, obs),
                &sim.run_profiles_scheduled_pipelined_with(&d, &start, 33, 10, obs, &UniformSingle, config),
            )?;
            assert_identical(
                &sim.run_profiles_scheduled(&d, &SystematicSweep, &start, 33, 10, obs),
                &sim.run_profiles_scheduled_pipelined_with(&d, &start, 33, 10, obs, &SystematicSweep, config),
            )?;
            assert_identical(
                &sim.run_profiles_scheduled(&d, &AllLogit, &start, 21, 7, obs),
                &sim.run_profiles_scheduled_pipelined_with(&d, &start, 21, 7, obs, &AllLogit, config),
            )?;
            // The coloured-revision block schedules ride the same seam.
            let block = RandomBlock::new(2);
            assert_identical(
                &sim.run_profiles_scheduled(&d, &block, &start, 33, 10, obs),
                &sim.run_profiles_scheduled_pipelined_with(&d, &start, 33, 10, obs, &block, config),
            )?;
            let coloured = ColouredBlocks::new(logit_graphs::Coloring::from_colors(vec![0, 1, 0]));
            assert_identical(
                &sim.run_profiles_scheduled(&d, &coloured, &start, 21, 7, obs),
                &sim.run_profiles_scheduled_pipelined_with(&d, &start, 21, 7, obs, &coloured, config),
            )?;
            Ok(())
        }

        check_rule(&game, Logit, beta, &sim, &obs, &config)?;
        check_rule(&game, MetropolisLogit, beta, &sim, &obs, &config)?;
        check_rule(&game, logit_core::NoisyBestResponse::new(0.15), beta, &sim, &obs, &config)?;
    }

    /// Reducer partition invariance, satellite check: folding observable
    /// sample batches in *any* chunking/arrival order yields the same
    /// `RunningStats` and the identical sorted `EmpiricalLaw` as a one-shot
    /// replica-major fold — exactly (bitwise) through the order-restoring
    /// `OrderedSeriesReducer`, and with exact counts/min/max/finals plus
    /// tolerance-bounded moments through `SeriesAccumulator::merge` over an
    /// arbitrary partition of the replicas.
    #[test]
    fn streamed_reduction_is_partition_invariant(
        seed in 0u64..10_000,
        replicas in 1usize..9,
        num_times in 1usize..6,
    ) {
        use logit_core::{OrderedSeriesReducer, SeriesAccumulator};

        let mut rng = StdRng::seed_from_u64(seed ^ 0x7A57);
        let values: Vec<Vec<f64>> = (0..replicas)
            .map(|_| (0..num_times).map(|_| rng.gen_range(-10.0..10.0)).collect())
            .collect();

        // One-shot reference: the sequential replica-major fold of
        // `run_profiles` (per recorded time, replicas in index order).
        let mut one_shot = SeriesAccumulator::new(num_times);
        for (replica, row) in values.iter().enumerate() {
            for (sample, &v) in row.iter().enumerate() {
                one_shot.record(sample, replica, v);
            }
        }

        // Arbitrary arrival order through the ordered frontier: shuffle all
        // (sample, replica) cells and offer them one by one.
        let mut cells: Vec<(usize, usize)> = (0..num_times)
            .flat_map(|k| (0..replicas).map(move |r| (k, r)))
            .collect();
        for i in (1..cells.len()).rev() {
            cells.swap(i, rng.gen_range(0..i + 1));
        }
        let mut reducer = OrderedSeriesReducer::new(num_times, replicas);
        for &(sample, replica) in &cells {
            reducer.offer(sample, replica, values[replica][sample]);
        }
        let streamed = reducer.finish();
        prop_assert_eq!(streamed.final_values(), one_shot.final_values());
        for (a, b) in streamed.series().iter().zip(one_shot.series()) {
            // Bitwise: the frontier replays the exact sequential fold order.
            prop_assert_eq!(a.count(), b.count());
            prop_assert_eq!(a.mean(), b.mean());
            prop_assert_eq!(a.variance(), b.variance());
            prop_assert_eq!(a.min(), b.min());
            prop_assert_eq!(a.max(), b.max());
        }

        // Arbitrary partition of the replicas into mergeable accumulators,
        // merged in shuffled order.
        let groups = rng.gen_range(1..4usize);
        let mut parts: Vec<SeriesAccumulator> =
            (0..groups).map(|_| SeriesAccumulator::new(num_times)).collect();
        let assignment: Vec<usize> = (0..replicas).map(|_| rng.gen_range(0..groups)).collect();
        for (replica, row) in values.iter().enumerate() {
            for (sample, &v) in row.iter().enumerate() {
                parts[assignment[replica]].record(sample, replica, v);
            }
        }
        for i in (1..parts.len()).rev() {
            parts.swap(i, rng.gen_range(0..i + 1));
        }
        let mut merged = parts.remove(0);
        for part in parts {
            merged.merge(part);
        }
        // Finals are keyed by replica, so the sorted law is exact...
        prop_assert_eq!(merged.final_values(), one_shot.final_values());
        prop_assert!(merged.law().ks_distance(&one_shot.law()) == 0.0);
        for (a, b) in merged.series().iter().zip(one_shot.series()) {
            // ...counts and extrema are exact, moments agree to rounding.
            prop_assert_eq!(a.count(), b.count());
            prop_assert_eq!(a.min(), b.min());
            prop_assert_eq!(a.max(), b.max());
            prop_assert!((a.mean() - b.mean()).abs() < 1e-9);
            prop_assert!((a.variance() - b.variance()).abs() < 1e-9);
        }
    }

    /// Schedule update-set invariants, extended to the coloured
    /// parallel-revision schedules (satellite check): `RandomBlock(k)`
    /// selects exactly `k` distinct in-range players per tick and moves no
    /// one else; `ColouredBlocks`' classes partition the player set, every
    /// class is an independent set of the interaction graph, and a round of
    /// `num_classes` ticks hits every player exactly once.
    #[test]
    fn block_schedules_update_the_players_they_claim(
        seed in 0u64..10_000,
        n in 4usize..10,
        k in 1usize..10,
        p in 0.15f64..0.9,
        beta in 0.0f64..3.0,
    ) {
        let k = 1 + (k - 1) % n; // block size in 1..=n
        let mut graph_rng = StdRng::seed_from_u64(seed);
        let graph = GraphBuilder::connected_erdos_renyi(n, p, &mut graph_rng, 20);
        let game = GraphicalCoordinationGame::new(
            graph.clone(),
            logit_games::CoordinationGame::from_deltas(2.0, 1.0),
        );
        let d = LogitDynamics::new(game.clone(), beta);
        let mut scratch = Scratch::for_game(&game);
        let mut selected = Vec::new();

        // RandomBlock(k): k distinct players, ascending; the engine freezes
        // everyone outside the block. The schedule draws from the stream the
        // step consumes, so probe the selection on a clone of the step RNG.
        let schedule = RandomBlock::new(k);
        let mut step_rng = StdRng::seed_from_u64(seed ^ 0xB10C);
        let mut profile = vec![0usize; n];
        for t in 0..25u64 {
            schedule.select_players(t, n, &mut step_rng.clone(), &mut selected);
            prop_assert_eq!(selected.len(), k, "exactly k players per tick");
            prop_assert!(selected.windows(2).all(|w| w[0] < w[1]), "distinct, ascending");
            prop_assert!(selected.iter().all(|&i| i < n));
            let before = profile.clone();
            d.step_scheduled(&schedule, t, &mut profile, &mut scratch, &mut step_rng);
            for i in 0..n {
                if !selected.contains(&i) {
                    prop_assert_eq!(profile[i], before[i], "tick {} moved player {}", t, i);
                }
            }
        }

        // ColouredBlocks: a partition into independent sets, each player hit
        // exactly once per round.
        let coloring = coloring_for_game(&game);
        prop_assert!(coloring.is_proper(&graph));
        prop_assert!(coloring.num_classes() <= graph.max_degree() + 1);
        let schedule = ColouredBlocks::new(coloring.clone());
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC010);
        let mut hits = vec![0usize; n];
        for t in 0..coloring.num_classes() as u64 {
            schedule.select_players(t, n, &mut rng, &mut selected);
            for window in selected.windows(2) {
                prop_assert!(window[0] < window[1]);
            }
            for (a_idx, &a) in selected.iter().enumerate() {
                hits[a] += 1;
                for &b in &selected[a_idx + 1..] {
                    prop_assert!(
                        !graph.has_edge(a, b),
                        "class {} contains the edge ({a}, {b})", coloring.class_of_tick(t)
                    );
                }
            }
        }
        prop_assert!(hits.iter().all(|&h| h == 1), "one update per player per round");
    }

    /// Coloured-engine bit-identity, the tentpole pin (satellite proptest):
    /// `step_coloured_par` (per-tick scoped threads) and
    /// `step_coloured_pooled` (persistent worker pool) — frozen-profile
    /// staged block, per-player RNG streams, any worker count, any wait
    /// policy, any narrow-class threshold — walk exactly the trajectory of
    /// the sequential in-place class sweep `step_coloured`, for every update
    /// rule on random graph topologies. This is the non-neighbours-commute
    /// argument made executable.
    #[test]
    fn coloured_par_is_bit_identical_to_the_sequential_class_sweep(
        seed in 0u64..10_000,
        n in 4usize..12,
        p in 0.2f64..0.9,
        beta in 0.0f64..4.0,
        workers in 1usize..5,
        policy_index in 0usize..3,
        min_class_size in 0usize..8,
    ) {
        use logit_core::{RuntimeConfig, WaitPolicy, WorkerPool};

        let mut graph_rng = StdRng::seed_from_u64(seed);
        let graph = GraphBuilder::connected_erdos_renyi(n, p, &mut graph_rng, 20);
        let game = GraphicalCoordinationGame::new(
            graph,
            logit_games::CoordinationGame::from_deltas(2.0, 1.0),
        );
        let coloring = coloring_for_game(&game);
        // Random chunking: the threshold decides which classes stay inline,
        // the worker count decides the chunk granularity of the rest.
        let config = RuntimeConfig {
            workers,
            wait_policy: WaitPolicy::ALL[policy_index],
            min_class_size,
            ..RuntimeConfig::default()
        };
        let pool = WorkerPool::new(&config);

        #[allow(clippy::too_many_arguments)]
        fn check<U: UpdateRule>(
            game: &GraphicalCoordinationGame,
            coloring: &logit_graphs::Coloring,
            rule: U,
            beta: f64,
            seed: u64,
            workers: usize,
            pool: &WorkerPool,
            config: &RuntimeConfig,
        ) -> Result<(), TestCaseError> {
            let d = DynamicsEngine::with_rule(game.clone(), rule, beta);
            let n = game.num_players();
            let mut scratch = Scratch::for_game(game);
            let mut pooled_scratch = Scratch::for_game(game);
            let mut staged = Vec::new();
            let mut pooled_staged = Vec::new();
            let mut seq = vec![0usize; n];
            let mut par = vec![0usize; n];
            let mut pooled = vec![0usize; n];
            for t in 0..2 * coloring.num_classes() as u64 + 3 {
                let moved_seq = d.step_coloured(coloring, t, seed, &mut seq, &mut scratch);
                let moved_par =
                    d.step_coloured_par(coloring, t, seed, &mut par, &mut staged, workers);
                let moved_pooled = d.step_coloured_pooled(
                    coloring,
                    t,
                    seed,
                    &mut pooled,
                    &mut pooled_scratch,
                    &mut pooled_staged,
                    pool,
                    config,
                );
                prop_assert_eq!(&seq, &par, "scoped diverged at t = {} ({} workers)", t, workers);
                prop_assert_eq!(
                    &seq, &pooled,
                    "pooled diverged at t = {} ({} workers, {} policy, threshold {})",
                    t, workers, config.wait_policy.name(), config.min_class_size
                );
                prop_assert_eq!(moved_seq, moved_par);
                prop_assert_eq!(moved_seq, moved_pooled);
            }
            Ok(())
        }

        check(&game, &coloring, Logit, beta, seed, workers, &pool, &config)?;
        check(&game, &coloring, MetropolisLogit, beta, seed, workers, &pool, &config)?;
        check(
            &game,
            &coloring,
            logit_core::NoisyBestResponse::new(0.15),
            beta,
            seed,
            workers,
            &pool,
            &config,
        )?;
        check(&game, &coloring, Fermi, beta, seed, workers, &pool, &config)?;
        check(&game, &coloring, ImitateBetter::new(0.1), beta, seed, workers, &pool, &config)?;
    }

    /// Relabelled-engine bit-identity (memory-locality layer): the byte
    /// engine on the RCM-relabelled game — sequential
    /// (`step_coloured_bytes`) and pooled (`step_coloured_pooled_bytes`),
    /// any worker count, any wait policy, any narrow-class threshold, any
    /// cache-block size — replays the unrelabelled sequential class sweep
    /// `step_coloured` exactly after the inverse permutation, for every
    /// update rule on random connected topologies. This pins the whole
    /// locality stack at once: colour-class transport through the
    /// permutation, byte (SoA) utility kernels, original-id draw keys, and
    /// blocked chunking.
    #[test]
    fn relabelled_csr_engine_is_bit_identical_to_the_unrelabelled_sweep(
        seed in 0u64..10_000,
        n in 4usize..12,
        p in 0.2f64..0.9,
        beta in 0.0f64..4.0,
        workers in 1usize..5,
        policy_index in 0usize..3,
        min_class_size in 0usize..8,
        block in 1usize..8,
    ) {
        use logit_core::{LocalityLayout, RuntimeConfig, WaitPolicy, WorkerPool};

        let mut graph_rng = StdRng::seed_from_u64(seed);
        let graph = GraphBuilder::connected_erdos_renyi(n, p, &mut graph_rng, 20);
        let base = logit_games::CoordinationGame::from_deltas(2.0, 1.0);
        let game = GraphicalCoordinationGame::new(graph.clone(), base);
        let coloring = coloring_for_game(&game);
        let layout = LocalityLayout::from_graph(&graph, &coloring);
        // The same game, players renamed along the RCM ordering; the layout
        // carries the colouring and the original-id draw keys across.
        let relabelled = GraphicalCoordinationGame::new(layout.relabel_graph(&graph), base);
        let config = RuntimeConfig {
            workers,
            wait_policy: WaitPolicy::ALL[policy_index],
            min_class_size,
            block_players: block,
            ..RuntimeConfig::default()
        };
        let pool = WorkerPool::new(&config);

        #[allow(clippy::too_many_arguments)]
        fn check<U: UpdateRule + Clone>(
            game: &GraphicalCoordinationGame,
            relabelled: &GraphicalCoordinationGame,
            coloring: &logit_graphs::Coloring,
            layout: &LocalityLayout,
            rule: U,
            beta: f64,
            seed: u64,
            pool: &WorkerPool,
            config: &RuntimeConfig,
        ) -> Result<(), TestCaseError> {
            let reference = DynamicsEngine::with_rule(game.clone(), rule.clone(), beta);
            let engine = DynamicsEngine::with_rule(relabelled.clone(), rule, beta);
            let n = game.num_players();
            let mut ref_scratch = Scratch::for_game(game);
            let mut seq_scratch = Scratch::for_game(relabelled);
            let mut pooled_scratch = Scratch::for_game(relabelled);
            let mut reference_profile = vec![0usize; n];
            let mut seq = Vec::new();
            layout.pack_profile(&reference_profile, &mut seq);
            let mut pooled = seq.clone();
            let mut unpacked = Vec::new();
            for t in 0..2 * coloring.num_classes() as u64 + 3 {
                let moved_ref = reference.step_coloured(
                    coloring, t, seed, &mut reference_profile, &mut ref_scratch,
                );
                let moved_seq = engine.step_coloured_bytes(
                    layout.coloring(), t, seed, Some(layout.labels()), &mut seq, &mut seq_scratch,
                );
                let moved_pooled = engine.step_coloured_pooled_bytes(
                    layout.coloring(),
                    t,
                    seed,
                    Some(layout.labels()),
                    &mut pooled,
                    &mut pooled_scratch,
                    pool,
                    config,
                );
                layout.unpack_profile(&seq, &mut unpacked);
                prop_assert_eq!(
                    &unpacked, &reference_profile,
                    "sequential byte sweep diverged at t = {}", t
                );
                layout.unpack_profile(&pooled, &mut unpacked);
                prop_assert_eq!(
                    &unpacked, &reference_profile,
                    "pooled byte sweep diverged at t = {} ({} workers, {} policy, block {})",
                    t, config.workers, config.wait_policy.name(), config.block_players
                );
                prop_assert_eq!(moved_ref, moved_seq);
                prop_assert_eq!(moved_ref, moved_pooled);
            }
            Ok(())
        }

        check(&game, &relabelled, &coloring, &layout, Logit, beta, seed, &pool, &config)?;
        check(&game, &relabelled, &coloring, &layout, MetropolisLogit, beta, seed, &pool, &config)?;
        check(
            &game,
            &relabelled,
            &coloring,
            &layout,
            logit_core::NoisyBestResponse::new(0.15),
            beta,
            seed,
            &pool,
            &config,
        )?;
        check(&game, &relabelled, &coloring, &layout, Fermi, beta, seed, &pool, &config)?;
        check(
            &game,
            &relabelled,
            &coloring,
            &layout,
            ImitateBetter::new(0.1),
            beta,
            seed,
            &pool,
            &config,
        )?;
    }

    /// Coloured-round exactness, satellite check: on small random graphical
    /// games the coloured round chain (ordered block product over the
    /// classes) keeps the Gibbs measure stationary for every
    /// Gibbs-reversible rule — pinned against the exact chain by a linear
    /// solve, the `transition_chain_all_logit`-style theory check of the new
    /// schedule.
    #[test]
    fn coloured_round_chain_fixes_gibbs_for_reversible_rules(
        seed in 0u64..10_000,
        p in 0.2f64..0.9,
        beta in 0.0f64..2.5,
    ) {
        let mut graph_rng = StdRng::seed_from_u64(seed);
        let graph = GraphBuilder::connected_erdos_renyi(4, p, &mut graph_rng, 20);
        let game = GraphicalCoordinationGame::new(
            graph,
            logit_games::CoordinationGame::from_deltas(2.0, 1.0),
        );
        let coloring = coloring_for_game(&game);
        prop_assert!(coloring.is_proper(&interaction_graph(&game)));
        let pi = gibbs_distribution(&game, beta);

        fn check<U: UpdateRule>(
            game: &GraphicalCoordinationGame,
            coloring: &logit_graphs::Coloring,
            rule: U,
            beta: f64,
            pi: &logit_linalg::Vector,
        ) -> Result<(), TestCaseError> {
            let d = DynamicsEngine::with_rule(game.clone(), rule, beta);
            let round = d.transition_chain_coloured_round(coloring);
            prop_assert!(round.is_ergodic());
            let stepped = round.step_distribution(pi);
            prop_assert!(
                total_variation(&stepped, pi) < 1e-9,
                "the coloured round must fix the Gibbs measure"
            );
            prop_assert!(total_variation(&stationary_distribution(&round), pi) < 1e-7);
            Ok(())
        }

        check(&game, &coloring, Logit, beta, &pi)?;
        check(&game, &coloring, MetropolisLogit, beta, &pi)?;
        check(&game, &coloring, Fermi, beta, &pi)?;
    }

    /// Monotonicity of the Gibbs measure: raising β can only move mass towards
    /// the minimum-potential profile.
    #[test]
    fn gibbs_concentrates_with_beta(seed in 0u64..10_000, beta in 0.1f64..2.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let game = TablePotentialGame::random(vec![2, 2], 3.0, &mut rng);
        let space = game.profile_space();
        let argmin = space
            .indices()
            .min_by(|&a, &b| {
                game.potential(&space.profile_of(a))
                    .partial_cmp(&game.potential(&space.profile_of(b)))
                    .unwrap()
            })
            .unwrap();
        let low = gibbs_distribution(&game, beta);
        let high = gibbs_distribution(&game, beta * 2.0);
        prop_assert!(high[argmin] >= low[argmin] - 1e-12);
    }
}
