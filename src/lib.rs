//! # logit-dynamics
//!
//! Facade crate for the reproduction of *"Convergence to Equilibrium of Logit
//! Dynamics for Strategic Games"* (Auletta, Ferraioli, Pasquale, Penna,
//! Persiano; SPAA 2011).
//!
//! Everything is re-exported from the workspace crates so downstream users can
//! depend on a single crate:
//!
//! * [`games`] — strategic games: coordination, graphical coordination, Ising,
//!   congestion, dominant-strategy and lower-bound constructions,
//! * [`graphs`] — social-graph topologies and cutwidth,
//! * [`markov`] — Markov-chain machinery (stationary distributions, exact mixing
//!   times, spectral gaps, bottleneck ratios, hitting times),
//! * [`core`] — the logit dynamics itself: chain construction, Gibbs measures,
//!   simulation, couplings, the barrier ζ and every theorem's closed-form bound,
//! * [`linalg`] — the small numerical substrate underneath it all.
//!
//! ## Quickstart
//!
//! ```
//! use logit_dynamics::prelude::*;
//!
//! // A 2x2 coordination game on a 4-player ring, moderate rationality.
//! let game = GraphicalCoordinationGame::new(
//!     GraphBuilder::ring(4),
//!     CoordinationGame::from_deltas(2.0, 1.0),
//! );
//! let measurement = exact_mixing_time(&game, 1.0, 0.25, 1 << 30);
//! let t_mix = measurement.mixing_time.expect("small game mixes");
//! let bound = bounds::theorem_3_4_mixing_upper(4, 2, 1.0, game.max_global_variation(), 0.25);
//! assert!((t_mix as f64) <= bound);
//! ```

pub use logit_anneal as anneal;
pub use logit_core as core;
pub use logit_games as games;
pub use logit_graphs as graphs;
pub use logit_linalg as linalg;
pub use logit_markov as markov;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use logit_anneal::{
        anneal_minimize, anneal_minimize_with_rule, expected_social_welfare, tempering_minimize,
        AnnealedDynamics, AnnealedLogitDynamics, BetaLadder, BetaSchedule, ConstantSchedule,
        GeometricSchedule, LinearRamp, LogarithmicSchedule,
    };
    pub use logit_core::bounds;
    pub use logit_core::{
        coloring_for_game, exact_mixing_time, exact_mixing_time_with_rule, gibbs_distribution,
        zeta, AllLogit, BarrierResult, ColouredBlocks, CouplingKind, DynamicsEngine, EmpiricalLaw,
        Fermi, ImitateBetter, Logit, LogitDynamics, MetropolisLogit, MixingMeasurement,
        NamedObservable, NoisyBestResponse, PipelineConfig, ProfileEnsembleResult,
        ProfileObservable, RandomBlock, Scratch, SelectionSchedule, SeriesAccumulator, Simulator,
        StepEvent, SwapStats, SystematicSweep, TemperedEnsembleResult, TemperingEnsemble,
        TemperingState, UniformSingle, UpdateRule,
    };
    pub use logit_games::{
        interaction_graph, AllZeroDominantGame, CongestionGame, CoordinationGame, Game,
        GraphicalCoordinationGame, IsingGame, LocalGame, PotentialGame, ProfileSpace, TableGame,
        TablePotentialGame, WellGame,
    };
    pub use logit_graphs::{
        cutwidth_exact, dsatur_coloring, greedy_coloring, Coloring, Graph, GraphBuilder,
    };
    pub use logit_markov::{
        mixing_time, spectral_analysis, stationary_distribution, total_variation, MarkovChain,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_re_exports_work_together() {
        let game = CoordinationGame::from_deltas(2.0, 1.0);
        let d = LogitDynamics::new(game, 1.0);
        assert_eq!(d.num_states(), 4);
        let chain = d.transition_chain();
        assert!(chain.is_ergodic());
    }

    #[test]
    fn facade_exposes_the_tempering_layer() {
        let game = WellGame::plateau(4, 2.0);
        let ladder = BetaLadder::geometric(0.4, 2.0, 3);
        let ensemble = TemperingEnsemble::new(game.clone(), Logit, ladder.betas());
        assert_eq!(ensemble.num_replicas(), 3);
        let mut state = ensemble.init_state(&[0; 4], 1);
        for _ in 0..10 {
            ensemble.round(&UniformSingle, &mut state, 4);
        }
        assert_eq!(state.swap_stats().pairs(), 2);
        let outcome = tempering_minimize(&game, Logit, &ladder, 0, 20, 4, 8, 1);
        assert_eq!(outcome.replicas, 8);
    }

    #[test]
    fn facade_exposes_the_rule_and_schedule_layer() {
        let game = CoordinationGame::from_deltas(2.0, 1.0);
        let d = DynamicsEngine::with_rule(game, MetropolisLogit, 1.0);
        assert!(d.transition_chain().is_ergodic());
        assert!(d.transition_chain_all_logit().is_ergodic());
        assert_eq!(d.rule().name(), "metropolis");
        let m = exact_mixing_time_with_rule(
            &CoordinationGame::from_deltas(2.0, 1.0),
            NoisyBestResponse::new(0.2),
            1.0,
            0.25,
            1 << 20,
        );
        assert!(m.mixing_time.is_some());
    }
}
