//! # logit-dynamics
//!
//! Facade crate for the reproduction of *"Convergence to Equilibrium of Logit
//! Dynamics for Strategic Games"* (Auletta, Ferraioli, Pasquale, Penna,
//! Persiano; SPAA 2011).
//!
//! Everything is re-exported from the workspace crates so downstream users can
//! depend on a single crate:
//!
//! * [`games`] — strategic games: coordination, graphical coordination, Ising,
//!   congestion, dominant-strategy and lower-bound constructions,
//! * [`graphs`] — social-graph topologies and cutwidth,
//! * [`markov`] — Markov-chain machinery (stationary distributions, exact mixing
//!   times, spectral gaps, bottleneck ratios, hitting times),
//! * [`core`] — the logit dynamics itself: chain construction, Gibbs measures,
//!   simulation, couplings, the barrier ζ and every theorem's closed-form bound,
//! * [`linalg`] — the small numerical substrate underneath it all.
//!
//! ## Quickstart
//!
//! ```
//! use logit_dynamics::prelude::*;
//!
//! // A 2x2 coordination game on a 4-player ring, moderate rationality.
//! let game = GraphicalCoordinationGame::new(
//!     GraphBuilder::ring(4),
//!     CoordinationGame::from_deltas(2.0, 1.0),
//! );
//! let measurement = exact_mixing_time(&game, 1.0, 0.25, 1 << 30);
//! let t_mix = measurement.mixing_time.expect("small game mixes");
//! let bound = bounds::theorem_3_4_mixing_upper(4, 2, 1.0, game.max_global_variation(), 0.25);
//! assert!((t_mix as f64) <= bound);
//! ```

pub use logit_anneal as anneal;
pub use logit_core as core;
pub use logit_games as games;
pub use logit_graphs as graphs;
pub use logit_linalg as linalg;
pub use logit_markov as markov;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use logit_anneal::{
        anneal_minimize, expected_social_welfare, AnnealedLogitDynamics, BetaSchedule,
        ConstantSchedule, GeometricSchedule, LinearRamp, LogarithmicSchedule,
    };
    pub use logit_core::bounds;
    pub use logit_core::{
        exact_mixing_time, gibbs_distribution, zeta, BarrierResult, CouplingKind, EmpiricalLaw,
        LogitDynamics, MixingMeasurement, NamedObservable, ProfileEnsembleResult,
        ProfileObservable, Scratch, Simulator, StepEvent,
    };
    pub use logit_games::{
        AllZeroDominantGame, CongestionGame, CoordinationGame, Game, GraphicalCoordinationGame,
        IsingGame, LocalGame, PotentialGame, ProfileSpace, TableGame, TablePotentialGame, WellGame,
    };
    pub use logit_graphs::{cutwidth_exact, Graph, GraphBuilder};
    pub use logit_markov::{
        mixing_time, spectral_analysis, stationary_distribution, total_variation, MarkovChain,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_re_exports_work_together() {
        let game = CoordinationGame::from_deltas(2.0, 1.0);
        let d = LogitDynamics::new(game, 1.0);
        assert_eq!(d.num_states(), 4);
        let chain = d.transition_chain();
        assert!(chain.is_ergodic());
    }
}
