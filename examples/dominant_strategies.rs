//! Games with dominant strategies: the mixing time cannot grow with β.
//!
//! ```text
//! cargo run --release --example dominant_strategies
//! ```
//!
//! Section 4 of the paper: for games with a dominant profile the mixing time is
//! bounded by a function of `n` and `m` only (Theorem 4.2), but that function
//! must be exponential in `n` in the worst case (Theorem 4.3). The example
//! contrasts three games:
//!
//! * the Theorem 4.3 game (`u = 0` iff everybody plays 0) — mixing time plateaus
//!   at roughly `m^{n-1}` as β grows,
//! * the "bonus" dominant-strategy game — every player is pulled to 0
//!   independently, so the chain mixes in `O(n log n)` for every β,
//! * the well potential game of Theorem 3.5 — no dominant strategy, and the
//!   mixing time grows without bound in β.

use logit_dynamics::games::dominant::BonusDominantGame;
use logit_dynamics::prelude::*;

fn main() {
    let n = 3;
    let m = 2;
    let epsilon = 0.25;
    let betas = [0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0];

    let worst_case = AllZeroDominantGame::new(n, m);
    let bonus = BonusDominantGame::new(n, m, 1.0);
    let well = WellGame::plateau(n, 1.0);

    println!("Mixing time as a function of beta ({n} players, {m} strategies)\n");
    println!(
        "{:>6} {:>22} {:>22} {:>22}",
        "beta", "Thm 4.3 game", "bonus dominant game", "well game (no dom.)"
    );
    for &beta in &betas {
        let t_worst = exact_mixing_time(&worst_case, beta, epsilon, 1 << 34).mixing_time;
        let t_bonus = exact_mixing_time(&bonus, beta, epsilon, 1 << 34).mixing_time;
        let t_well = exact_mixing_time(&well, beta, epsilon, 1 << 34).mixing_time;
        let show = |t: Option<u64>| {
            t.map(|v| v.to_string())
                .unwrap_or_else(|| "> budget".into())
        };
        println!(
            "{:>6.1} {:>22} {:>22} {:>22}",
            beta,
            show(t_worst),
            show(t_bonus),
            show(t_well)
        );
    }

    println!();
    println!(
        "Theorem 4.2 upper bound (independent of beta): {:.0}",
        bounds::theorem_4_2_mixing_upper(n, m)
    );
    println!(
        "Theorem 4.3 lower bound for the worst-case game: {:.2}",
        bounds::theorem_4_3_mixing_lower(n, m)
    );
    println!();
    println!("The two dominant-strategy games flatten out as beta grows; the well game");
    println!("keeps slowing down forever, exactly the dichotomy of Sections 3 and 4.");
}
