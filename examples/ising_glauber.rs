//! The Ising model / Glauber dynamics correspondence.
//!
//! ```text
//! cargo run --release --example ising_glauber
//! ```
//!
//! The paper observes that the zero-field ferromagnetic Ising model is the
//! special graphical coordination game with no risk-dominant equilibrium and
//! that Glauber dynamics *is* the logit dynamics. This example:
//!
//! 1. checks the correspondence numerically (identical spectral gaps for the
//!    Ising game and the δ₀ = δ₁ = 2J coordination game),
//! 2. shows the low-/high-temperature phase picture on a ring vs a clique
//!    (mean absolute magnetisation under the Gibbs measure),
//! 3. reports how the relaxation time diverges with β on the clique
//!    (mean-field / Curie–Weiss behaviour) but stays tame on the ring.

use logit_dynamics::core::gibbs::gibbs_distribution;
use logit_dynamics::core::spectral_mixing_bounds;
use logit_dynamics::prelude::*;

fn mean_abs_magnetization(game: &IsingGame, beta: f64) -> f64 {
    let space = game.profile_space();
    let pi = gibbs_distribution(game, beta);
    space
        .indices()
        .map(|idx| {
            let profile = space.profile_of(idx);
            pi[idx] * game.magnetization(&profile).abs() / game.num_players() as f64
        })
        .sum()
}

fn main() {
    let n = 5;
    let j = 0.5;

    // 1. Glauber == logit on the coordination-game translation.
    let ising_ring = IsingGame::zero_field(GraphBuilder::ring(n), j);
    let coord_ring =
        GraphicalCoordinationGame::new(GraphBuilder::ring(n), CoordinationGame::symmetric(2.0 * j));
    let beta_check = 0.8;
    let gap_ising = spectral_mixing_bounds(&ising_ring, beta_check).spectral_gap;
    let gap_coord = spectral_mixing_bounds(&coord_ring, beta_check).spectral_gap;
    println!("Glauber/logit correspondence at beta = {beta_check}:");
    println!("  spectral gap (Ising, J = {j})            = {gap_ising:.8}");
    println!("  spectral gap (coordination, delta = 2J)  = {gap_coord:.8}");
    println!("  |difference| = {:.2e}\n", (gap_ising - gap_coord).abs());

    // 2/3. Phase picture and relaxation times: ring vs clique.
    let ising_clique = IsingGame::zero_field(GraphBuilder::clique(n), j);
    println!(
        "{:>6} {:>16} {:>16} {:>16} {:>16}",
        "beta", "|m| ring", "|m| clique", "t_rel ring", "t_rel clique"
    );
    for beta in [0.1, 0.3, 0.6, 1.0, 1.5, 2.0, 2.5] {
        let m_ring = mean_abs_magnetization(&ising_ring, beta);
        let m_clique = mean_abs_magnetization(&ising_clique, beta);
        let r_ring = spectral_mixing_bounds(&ising_ring, beta).relaxation_time;
        let r_clique = spectral_mixing_bounds(&ising_clique, beta).relaxation_time;
        println!(
            "{:>6.2} {:>16.4} {:>16.4} {:>16.2} {:>16.2}",
            beta, m_ring, m_clique, r_ring, r_clique
        );
    }

    println!();
    println!("As beta grows both models magnetise (|m| -> 1), but the clique's");
    println!("relaxation time blows up exponentially in beta*n^2*J (the Curie-Weiss");
    println!("barrier), while the ring's grows only like e^(4*J*beta) — the same");
    println!("contrast Theorems 5.5 and 5.6/5.7 prove for coordination games.");
}
