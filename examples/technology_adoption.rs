//! Technology adoption on a social network (the paper's motivating scenario).
//!
//! ```text
//! cargo run --release --example technology_adoption
//! ```
//!
//! Graphical coordination games model the diffusion of a new technology
//! (Peyton Young, Ellison, Montanari–Saberi): strategy 1 is the *new* technology
//! and is risk dominant (δ₁ > δ₀), strategy 0 the incumbent. Everyone starts on
//! the incumbent; the logit dynamics describes boundedly rational users
//! occasionally re-evaluating their choice.
//!
//! The example contrasts a ring (local interaction) with a clique (global
//! interaction):
//!
//! * stationary behaviour: the Gibbs measure concentrates on everybody adopting
//!   the new technology,
//! * convergence: the *expected hitting time* of the all-adopt profile and the
//!   mixing time grow mildly on the ring but explode with β on the clique —
//!   local interaction spreads innovations faster, exactly the qualitative
//!   message of Section 5.

use logit_dynamics::core::gibbs::gibbs_distribution;
use logit_dynamics::markov::expected_hitting_times;
use logit_dynamics::prelude::*;

fn adoption_report(name: &str, game: &GraphicalCoordinationGame, betas: &[f64]) {
    let n = game.num_players();
    let space = game.profile_space();
    let incumbent = space.index_of(&vec![0usize; n]);
    let adopted = space.index_of(&vec![1usize; n]);

    println!(
        "--- {name} ({n} players, {} edges) ---",
        game.graph().num_edges()
    );
    println!(
        "{:>6} {:>18} {:>18} {:>14}",
        "beta", "pi(all adopt)", "E[hit all-adopt]", "t_mix(1/4)"
    );
    for &beta in betas {
        let dynamics = LogitDynamics::new(game.clone(), beta);
        let chain = dynamics.transition_chain();
        let pi = gibbs_distribution(game, beta);
        let hit = expected_hitting_times(&chain, &[adopted]);
        let m = exact_mixing_time(game, beta, 0.25, 1 << 34);
        println!(
            "{:>6.2} {:>18.6} {:>18.1} {:>14}",
            beta,
            pi[adopted],
            hit[incumbent],
            m.mixing_time
                .map(|t| t.to_string())
                .unwrap_or_else(|| "> budget".into()),
        );
    }
    println!();
}

fn main() {
    // The new technology is better: adopting it against an adopter pays 2,
    // sticking with the incumbent against an incumbent pays 1.
    let base = CoordinationGame::from_deltas(1.0, 2.0);
    let n = 5;
    let betas = [0.25, 0.5, 1.0, 1.5, 2.0, 3.0];

    let ring = GraphicalCoordinationGame::new(GraphBuilder::ring(n), base);
    let clique = GraphicalCoordinationGame::new(GraphBuilder::clique(n), base);

    println!("Diffusion of a risk-dominant technology (delta0 = 1, delta1 = 2)\n");
    adoption_report("ring (local interaction)", &ring, &betas);
    adoption_report("clique (global interaction)", &clique, &betas);

    println!("Take-away: on both topologies the stationary distribution eventually");
    println!("concentrates on full adoption, but on the clique the time to get there");
    println!("grows exponentially with beta (the barrier is Theta(n^2)), while on the");
    println!("ring it stays modest — local interaction is what makes diffusion fast.");

    // Also report the cutwidths driving the Theorem 5.1 bound.
    let chi_ring = cutwidth_exact(ring.graph()).cutwidth;
    let chi_clique = cutwidth_exact(clique.graph()).cutwidth;
    println!();
    println!("cutwidths: ring = {chi_ring}, clique = {chi_clique} (Theorem 5.1 exponent is proportional to these)");
}
