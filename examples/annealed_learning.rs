//! Time-varying rationality (the paper's "learning process" variant).
//!
//! ```text
//! cargo run --release --example annealed_learning
//! ```
//!
//! The conclusions of the paper suggest studying a logit dynamics whose β is not
//! fixed but grows over time as players learn the game. This example compares
//! four β schedules on a clique coordination game whose two consensus profiles
//! are separated by a Θ(n²δ) barrier (the hard case of Theorem 5.5), starting
//! from the *wrong* (non-risk-dominant) consensus:
//!
//! * a fixed low β (fast mixing, but the stationary law is spread out),
//! * a fixed high β (the chain is trapped: the Theorem 5.5 barrier),
//! * a linear ramp (anneal slowly, then exploit),
//! * the logarithmic Hajek schedule tuned to the game's barrier ζ.
//!
//! The annealed schedules reach the potential-minimising consensus far more
//! reliably than the fixed high-β dynamics with the same step budget — the
//! practical payoff of treating β as a learning rate.

use logit_dynamics::anneal::welfare::welfare_ratio;
use logit_dynamics::core::zeta;
use logit_dynamics::prelude::*;

fn main() {
    let n = 6;
    let game = GraphicalCoordinationGame::new(
        GraphBuilder::clique(n),
        CoordinationGame::from_deltas(2.0, 1.0),
    );
    let space = game.profile_space();
    let start = space.index_of(&vec![1usize; n]); // the shallow equilibrium
    let barrier = zeta(&game).zeta;
    let steps = 3_000u64;
    let replicas = 200;

    println!("Annealed logit dynamics on a {n}-player clique coordination game");
    println!("barrier zeta = {barrier:.2}, start = all-ones (the non-risk-dominant consensus)");
    println!("{steps} steps per replica, {replicas} replicas per schedule\n");
    println!(
        "{:<42} {:>14} {:>20}",
        "schedule", "success rate", "mean final potential"
    );

    let report = |label: &str, outcome: &logit_dynamics::anneal::AnnealingOutcome| {
        println!(
            "{:<42} {:>14.2} {:>20.2}",
            label, outcome.success_rate, outcome.mean_final_potential
        );
    };

    let fixed_low = anneal_minimize(&game, ConstantSchedule::new(0.3), start, steps, replicas, 1);
    report("constant beta = 0.3", &fixed_low);

    let fixed_high = anneal_minimize(&game, ConstantSchedule::new(3.0), start, steps, replicas, 2);
    report("constant beta = 3.0 (quench)", &fixed_high);

    let ramp = anneal_minimize(
        &game,
        LinearRamp::new(0.1, 3.0, steps / 2),
        start,
        steps,
        replicas,
        3,
    );
    report("linear ramp 0.1 -> 3.0", &ramp);

    let hajek = anneal_minimize(
        &game,
        LogarithmicSchedule::new(barrier.max(1.0)),
        start,
        steps,
        replicas,
        4,
    );
    report("logarithmic ln(t+2)/zeta (Hajek)", &hajek);

    println!();
    println!(
        "global potential minimum = {:.2} (the risk-dominant all-zero consensus)",
        ramp.global_minimum
    );
    println!();
    println!("Stationary welfare as a function of beta (reference [4]'s measure):");
    for beta in [0.25, 0.5, 1.0, 2.0, 4.0] {
        let ratio = welfare_ratio(&game, beta).expect("coordination payoffs are positive");
        println!("  beta = {beta:>4}: E_pi[welfare] / optimum = {ratio:.4}");
    }
    println!();
    println!("A quench at high beta gets stuck in the starting consensus (low success rate);");
    println!("ramped or logarithmic schedules cross the barrier while it is still cheap and");
    println!("then freeze in the risk-dominant optimum — the 'learning' variant pays off.");
}
