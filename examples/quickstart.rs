//! Quickstart: build a game, run the logit dynamics, measure convergence.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The example builds a graphical coordination game on a 5-player ring, sweeps
//! the inverse noise β, and prints the exact mixing time next to the paper's
//! Theorem 3.4 (all β) and Theorem 5.6 (ring) upper bounds.

use logit_dynamics::prelude::*;

fn main() {
    let n = 5;
    let delta = 1.0;
    // No risk-dominant equilibrium: δ0 = δ1 = δ (the Ising-like case of §5.3).
    let game =
        GraphicalCoordinationGame::new(GraphBuilder::ring(n), CoordinationGame::symmetric(delta));
    let delta_phi = game.max_global_variation();
    let epsilon = 0.25;

    println!("Logit dynamics on a {n}-player ring coordination game (delta = {delta})");
    println!(
        "state space: {} profiles, delta_phi = {delta_phi}",
        game.num_profiles()
    );
    println!();
    println!(
        "{:>6} {:>12} {:>14} {:>16} {:>16}",
        "beta", "t_mix(1/4)", "t_relax", "Thm 3.4 bound", "Thm 5.6 bound"
    );

    for beta in [0.0, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0] {
        let m = exact_mixing_time(&game, beta, epsilon, 1 << 34);
        let t34 = bounds::theorem_3_4_mixing_upper(n, 2, beta, delta_phi, epsilon);
        let t56 = bounds::theorem_5_6_mixing_upper(n, delta, beta, epsilon);
        println!(
            "{:>6.2} {:>12} {:>14.2} {:>16.1} {:>16.1}",
            beta,
            m.mixing_time
                .map(|t| t.to_string())
                .unwrap_or_else(|| "> budget".into()),
            m.relaxation_time,
            t34,
            t56
        );
    }

    println!();
    println!("The measured mixing time always sits below both upper bounds, and for");
    println!("the ring the Theorem 5.6 bound (exponential in 2*delta*beta) is far");
    println!("tighter than the generic Theorem 3.4 bound (exponential in beta*delta_phi).");

    // A short simulation from the all-ones profile, watching the potential drop.
    let beta = 1.5;
    let dynamics = LogitDynamics::new(game.clone(), beta);
    let space = dynamics.space().clone();
    let start = space.index_of(&vec![1usize; n]);
    let sim = Simulator::new(7, 2000);
    let game_for_obs = game.clone();
    let result = sim.run(&dynamics, start, 200, move |idx| {
        game_for_obs.potential(&space.profile_of(idx))
    });
    println!();
    println!(
        "simulation at beta = {beta}: mean potential after 200 steps = {:.3} (minimum possible {:.3})",
        result.observable_stats.mean(),
        -(game.graph().num_edges() as f64) * delta
    );

    // Swapping the update rule is one constructor away: the Metropolis chain
    // shares the Gibbs stationary distribution but mixes through a different
    // kernel, and noisy best response replaces beta-noise with epsilon-mutation.
    println!();
    println!("same game, other revision rules (exact mixing time at beta = {beta}):");
    let metro = exact_mixing_time_with_rule(&game, MetropolisLogit, beta, epsilon, 1 << 34);
    let nbr =
        exact_mixing_time_with_rule(&game, NoisyBestResponse::new(0.1), beta, epsilon, 1 << 34);
    for (name, m) in [("metropolis", metro), ("nbr(0.10)", nbr)] {
        println!(
            "  {name:>10}: t_mix = {}",
            m.mixing_time
                .map(|t| t.to_string())
                .unwrap_or_else(|| "> budget".into())
        );
    }

    // The parallel all-logit block schedule is its own exact chain.
    let all_logit_chain = dynamics.transition_chain_all_logit();
    println!(
        "  all-logit block chain: ergodic = {} ({} states, one block = {n} updates)",
        all_logit_chain.is_ergodic(),
        all_logit_chain.num_states()
    );
}
