//! Vendored minimal stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest this workspace uses: the [`proptest!`]
//! macro (with `#![proptest_config(..)]`), range/tuple/`Just`/collection
//! strategies, `prop_flat_map`/`prop_map`, and the `prop_assert*` /
//! `prop_assume!` macros. Cases are generated from a deterministic per-test
//! RNG (seeded from the test name), so failures are reproducible. There is no
//! shrinking: a failing case reports its case number and message and panics.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Debug;
use std::ops::Range;

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the runner draws a fresh case.
    Reject,
    /// A `prop_assert*!` failed; the runner panics with this message.
    Fail(String),
}

/// Runner configuration (`#![proptest_config(..)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` successful cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Builds the deterministic RNG for a named property test.
pub fn new_test_rng(name: &str) -> TestRng {
    // FNV-1a over the test name: stable, deterministic seeds per property.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    TestRng::seed_from_u64(h)
}

/// A value generator. Unlike upstream proptest there is no shrinking, so a
/// strategy is just a function from an RNG to a value.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns for it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Rejects generated values failing `pred` (retrying, up to a cap).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Type-erased boxed form.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 10000 consecutive values: {}",
            self.whence
        );
    }
}

/// See [`Strategy::boxed`].
pub struct BoxedStrategy<T> {
    inner: Box<dyn StrategyObject<T>>,
}

trait StrategyObject<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> StrategyObject<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate_dyn(rng)
    }
}

/// Constant strategy: always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, i64, i32);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// A number-of-elements specification: a fixed size or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec`s of `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Asserts a condition inside a `proptest!` body, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed at {}:{}: {}",
                file!(),
                line!(),
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed at {}:{}: {} (left: {:?}, right: {:?})",
                file!(),
                line!(),
                format!($($fmt)*),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed at {}:{}: {} == {} (left: {:?}, right: {:?})",
                file!(),
                line!(),
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if l == r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed at {}:{}: {} != {} (both: {:?})",
                file!(),
                line!(),
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Rejects the current case (the runner draws a fresh one).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declares property tests. Each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$attr:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::new_test_rng(concat!(module_path!(), "::", stringify!($name)));
            let mut passed: u32 = 0;
            let mut rejected: u32 = 0;
            while passed < config.cases {
                let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                    $body
                    ::std::result::Result::Ok(())
                })();
                match result {
                    ::std::result::Result::Ok(()) => passed += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => {
                        rejected += 1;
                        assert!(
                            rejected < 50_000,
                            "proptest {}: too many rejected cases ({} passed so far)",
                            stringify!($name),
                            passed
                        );
                    }
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed on case {}: {}",
                            stringify!($name),
                            passed,
                            msg
                        );
                    }
                }
            }
        }
    )*};
}

/// The commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError,
    };

    /// Mirrors the upstream `prop` module alias in the prelude.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (usize, Vec<usize>)> {
        (2usize..6).prop_flat_map(|n| (Just(n), prop::collection::vec(0usize..10, 0..n)))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3usize..17, y in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn tuples_and_vecs((n, v) in pair()) {
            prop_assert!((2..6).contains(&n));
            prop_assert!(v.len() < n);
            prop_assert!(v.iter().all(|&e| e < 10));
        }

        #[test]
        fn assume_rejects(k in 0usize..10) {
            prop_assume!(k % 2 == 0);
            prop_assert_eq!(k % 2, 0);
        }
    }

    #[test]
    fn deterministic_streams() {
        let mut a = crate::new_test_rng("alpha");
        let mut b = crate::new_test_rng("alpha");
        let s = 0usize..100;
        for _ in 0..50 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
