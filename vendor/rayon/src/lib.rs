//! Vendored minimal stand-in for the `rayon` crate.
//!
//! The workspace uses two parallel shapes — `into_par_iter()` / `par_iter()`
//! followed by `map` and `collect()`, and [`scope`] with explicit
//! [`Scope::spawn`] calls (the pipelined ensemble runner's worker farm) — so
//! this crate implements those shapes with `std::thread::scope` and an atomic
//! work counter. The parallelism is real (one worker per available core for
//! the iterator shape, one thread per spawn for the scope shape), the API is
//! a drop-in subset, and iterator results are returned in input order, so
//! callers observe the same determinism guarantees as with upstream rayon.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A spawn handle mirroring `rayon::Scope`: tasks spawned through it may
/// borrow data owned outside the [`scope`] call and are all joined before
/// `scope` returns.
///
/// Upstream rayon schedules spawned tasks onto its global work-stealing
/// pool; this stand-in dedicates one OS thread per spawn, which matches the
/// workspace's usage (a handful of long-lived pipeline-stage workers, not
/// fine-grained tasks).
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
    first_panic: std::sync::Arc<Mutex<Option<Box<dyn std::any::Any + Send + 'static>>>>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns `f` into the scope. Like upstream rayon, the closure receives
    /// the scope again so it can spawn further tasks.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        let first_panic = std::sync::Arc::clone(&self.first_panic);
        self.inner.spawn(move || {
            let scope = Scope {
                inner,
                first_panic: std::sync::Arc::clone(&first_panic),
            };
            // Catch the payload so [`scope`] can re-raise the task's own
            // panic (std's scope would replace it with a generic message).
            if let Err(payload) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                f(&scope);
            })) {
                let mut slot = first_panic.lock().expect("panic slot poisoned");
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
        });
    }
}

/// Creates a scope in which borrowed-data tasks can be spawned; every
/// spawned task is joined before `scope` returns (mirrors `rayon::scope`,
/// implemented over `std::thread::scope`).
///
/// Panic semantics match upstream rayon rather than `std::thread::scope`:
/// when a spawned task panics and the scope closure itself returns
/// normally, the *task's own payload* is re-raised here (std would panic
/// with an opaque "a scoped thread panicked" instead), so callers see the
/// root cause.
pub fn scope<'env, F, R>(op: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    let first_panic = std::sync::Arc::new(Mutex::new(None));
    let result = std::thread::scope(|s| {
        let wrapper = Scope {
            inner: s,
            first_panic: std::sync::Arc::clone(&first_panic),
        };
        op(&wrapper)
    });
    if let Some(payload) = first_panic.lock().expect("panic slot poisoned").take() {
        std::panic::resume_unwind(payload);
    }
    result
}

/// An eagerly materialised "parallel iterator": the items to process.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// A parallel iterator with a pending `map`.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

/// Types convertible into a [`ParIter`] by value.
pub trait IntoParallelIterator {
    /// Item type.
    type Item;
    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for std::ops::Range<u64> {
    type Item = u64;
    fn into_par_iter(self) -> ParIter<u64> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// Types whose references iterate in parallel (`slice.par_iter()`).
pub trait IntoParallelRefIterator<'a> {
    /// Item type (a reference).
    type Item: 'a;
    /// Borrowing parallel iterator.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<T: Send> ParIter<T> {
    /// Maps every item through `f` (executed in parallel at `collect` time).
    pub fn map<U, F>(self, f: F) -> ParMap<T, F>
    where
        F: Fn(T) -> U + Sync,
        U: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// Collection targets for a parallel map.
pub trait FromParallelIterator<U> {
    /// Builds the collection from the (input-ordered) mapped values.
    fn from_ordered_vec(v: Vec<U>) -> Self;
}

impl<U> FromParallelIterator<U> for Vec<U> {
    fn from_ordered_vec(v: Vec<U>) -> Self {
        v
    }
}

impl<T: Send, U: Send, F: Fn(T) -> U + Sync> ParMap<T, F> {
    /// Runs the map across all available cores and collects the results in
    /// input order.
    pub fn collect<C: FromParallelIterator<U>>(self) -> C {
        C::from_ordered_vec(parallel_map(self.items, &self.f))
    }

    /// Sum of the mapped values.
    pub fn sum<S: std::iter::Sum<U>>(self) -> S {
        parallel_map(self.items, &self.f).into_iter().sum()
    }
}

/// The engine: applies `f` to every item on `min(cores, len)` scoped threads.
fn parallel_map<T: Send, U: Send, F: Fn(T) -> U + Sync>(items: Vec<T>, f: &F) -> Vec<U> {
    let n = items.len();
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }

    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("work slot poisoned")
                    .take()
                    .expect("work item taken twice");
                let out = f(item);
                *results[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });

    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("worker exited before finishing its item")
        })
        .collect()
}

/// The commonly used traits, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(out.len(), 1000);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i * i);
        }
    }

    #[test]
    fn par_iter_borrows() {
        let data: Vec<f64> = (0..256).map(|i| i as f64).collect();
        let doubled: Vec<f64> = data.par_iter().map(|&x| 2.0 * x).collect();
        assert_eq!(doubled[255], 510.0);
        // `data` still usable afterwards.
        assert_eq!(data.len(), 256);
    }

    #[test]
    fn scope_joins_all_spawns_and_allows_borrows() {
        let data: Vec<u64> = (0..100).collect();
        let total = std::sync::atomic::AtomicUsize::new(0);
        crate::scope(|s| {
            for chunk in data.chunks(25) {
                let total = &total;
                s.spawn(move |_| {
                    let sum: u64 = chunk.iter().sum();
                    total.fetch_add(sum as usize, std::sync::atomic::Ordering::Relaxed);
                });
            }
        });
        assert_eq!(
            total.load(std::sync::atomic::Ordering::Relaxed),
            (0..100).sum::<u64>() as usize
        );
    }

    #[test]
    fn scope_spawns_can_spawn_again() {
        let flag = std::sync::atomic::AtomicUsize::new(0);
        crate::scope(|s| {
            let flag = &flag;
            s.spawn(move |s2| {
                s2.spawn(move |_| {
                    flag.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                });
            });
        });
        assert_eq!(flag.load(std::sync::atomic::Ordering::Relaxed), 1);
    }

    #[test]
    fn scope_reraises_the_spawned_tasks_own_panic() {
        let caught = std::panic::catch_unwind(|| {
            crate::scope(|s| {
                s.spawn(|_| panic!("task payload"));
            })
        });
        let payload = caught.expect_err("the spawned task's panic must propagate");
        assert_eq!(
            payload.downcast_ref::<&str>().copied(),
            Some("task payload"),
            "the task's own payload must survive, not std's generic message"
        );
    }

    #[test]
    fn heavy_closures_actually_run() {
        let out: Vec<u64> = (0..64u64)
            .into_par_iter()
            .map(|i| {
                (0..10_000).fold(i, |acc, _| {
                    acc.wrapping_mul(6364136223846793005).wrapping_add(1)
                })
            })
            .collect();
        assert_eq!(out.len(), 64);
    }
}
