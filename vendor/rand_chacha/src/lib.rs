//! Vendored minimal stand-in for the `rand_chacha` crate.
//!
//! [`ChaCha8Rng`] is a real ChaCha stream cipher with 8 rounds keyed by a
//! 32-byte seed, exposed through the workspace's vendored `rand` traits. Like
//! the vendored `rand`, it is deterministic and statistically strong but not
//! bit-compatible with the upstream crate (the upstream seed expansion
//! differs); the workspace only relies on self-consistent streams.

use rand::{RngCore, SeedableRng};

/// Number of ChaCha double-rounds: ChaCha8 has 8 rounds = 4 double-rounds.
const DOUBLE_ROUNDS: usize = 4;

/// A ChaCha8 random number generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Cipher input state: constants, key, counter, nonce.
    state: [u32; 16],
    /// Current output block.
    block: [u32; 16],
    /// Next unread word of `block` (16 = exhausted).
    index: usize,
}

#[inline(always)]
fn quarter_round(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(16);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(12);
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(8);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..DOUBLE_ROUNDS {
            // Column rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self
            .block
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(s);
        }
        // 64-bit block counter in words 12..14.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.index = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }
}

impl RngCore for ChaCha8Rng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            let mut bytes = [0u8; 4];
            bytes.copy_from_slice(&seed[i * 4..(i + 1) * 4]);
            state[4 + i] = u32::from_le_bytes(bytes);
        }
        // Counter and nonce start at zero.
        Self {
            state,
            block: [0; 16],
            index: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn streams_are_deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        let mut c = ChaCha8Rng::seed_from_u64(2);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn uniformity_smoke_test() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mean: f64 = (0..50_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 50_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..7 {
            a.next_u32();
        }
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
