//! Vendored minimal stand-in for the `criterion` crate.
//!
//! Provides the `criterion_group!` / `criterion_main!` macros,
//! [`Criterion::benchmark_group`], `bench_function` / `bench_with_input`,
//! [`Bencher::iter`] and [`BenchmarkId`], measuring wall-clock nanoseconds per
//! iteration with a calibrated batch loop. No statistics machinery, no HTML
//! reports — each benchmark prints one line:
//! `group/id ... <ns>/iter (<iters> iterations)`.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Minimum measurement window per benchmark.
const TARGET_TIME: Duration = Duration::from_millis(200);

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), &mut f);
        self
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in sizes its own batches.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; throughput is not reported.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id), &mut f);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&format!("{}/{}", self.name, id.0), &mut |b| f(b, input));
        self
    }

    /// Ends the group (no-op in the stand-in).
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        Self(format!("{name}/{parameter}"))
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self(parameter.to_string())
    }
}

/// Throughput annotation (accepted, not reported).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Measures one closure.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Calls `routine` in a timing loop, calibrating the batch size so the
    /// total measurement window is long enough to be meaningful.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut routine: F) {
        // Warm-up and calibration: double the batch until it takes >= 1/20 of
        // the target window.
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let took = start.elapsed();
            if took >= TARGET_TIME / 20 || batch >= 1 << 30 {
                break;
            }
            batch *= 2;
        }
        // Measurement: run batches until the window is filled.
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        while total < TARGET_TIME {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            total += start.elapsed();
            iters += batch;
        }
        self.iterations = iters;
        self.elapsed = total;
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, f: &mut F) {
    let mut bencher = Bencher {
        iterations: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    if bencher.iterations == 0 {
        println!("{label:<56} (no measurement: Bencher::iter never called)");
        return;
    }
    let ns = bencher.elapsed.as_nanos() as f64 / bencher.iterations as f64;
    println!(
        "{label:<56} {:>14.1} ns/iter ({} iterations)",
        ns, bencher.iterations
    );
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes `--bench`; ignore all arguments.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher {
            iterations: 0,
            elapsed: Duration::ZERO,
        };
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_add(1);
            acc
        });
        assert!(b.iterations > 0);
        assert!(b.elapsed >= TARGET_TIME);
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("steps", 8).0, "steps/8");
        assert_eq!(BenchmarkId::from_parameter("n=8").0, "n=8");
    }
}
