//! Vendored minimal stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no access to a crates
//! registry, so the handful of `rand` APIs the workspace actually uses are
//! implemented here: the [`Rng`] / [`RngCore`] / [`SeedableRng`] traits,
//! [`rngs::StdRng`] (a xoshiro256++ generator), `gen`, `gen_range`,
//! `gen_bool`, and [`seq::SliceRandom::shuffle`].
//!
//! The streams are deterministic and of good statistical quality, but they do
//! **not** bit-match the real `rand` crate; everything in this workspace that
//! depends on reproducibility seeds its own generators, so only
//! self-consistency matters.

pub mod rngs;
pub mod seq;

use std::ops::{Range, RangeInclusive};

/// The raw generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Next uniformly distributed `u64`.
    fn next_u64(&mut self) -> u64;

    /// Next uniformly distributed `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from a generator (the subset of the
/// real crate's `Standard` distribution this workspace uses).
pub trait StandardSample: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Modulo bias is < span / 2^64, far below anything observable here.
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, i64, i32);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u = f32::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// The user-facing generator interface (blanket-implemented for every
/// [`RngCore`], mirroring the real crate).
pub trait Rng: RngCore {
    /// Draws a value of type `T` (uniform over its natural domain; `[0, 1)`
    /// for floats).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators, with the real crate's `seed_from_u64` convenience
/// (SplitMix64 expansion of a `u64` into the full seed).
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let x = splitmix64(&mut sm);
            for (b, byte) in chunk.iter_mut().zip(x.to_le_bytes()) {
                *b = byte;
            }
        }
        Self::from_seed(seed)
    }
}

/// One step of the SplitMix64 sequence (used for seed expansion).
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The most commonly used items, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        for _ in 0..1000 {
            let x: f64 = a.gen();
            assert!((0.0..1.0).contains(&x));
            let k = a.gen_range(3usize..17);
            assert!((3..17).contains(&k));
            let y = a.gen_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&y));
        }
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = StdRng::seed_from_u64(7);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let freq = hits as f64 / 20_000.0;
        assert!((freq - 0.3).abs() < 0.02, "freq = {freq}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "a 50-element shuffle virtually never is the identity"
        );
    }
}
